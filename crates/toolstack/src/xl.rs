//! The `xl` command-line toolstack: domain creation, destruction,
//! save/restore and the instance registry.
//!
//! The boot path reproduces the real work `xl`/`libxl` do: hypervisor
//! allocations, kernel image loading, per-entry Xenstore population, device
//! negotiation and the userspace follow-ups (bridging). Two details matter
//! for Fig. 4 and are modelled explicitly:
//!
//! * **name validation** — vanilla `xl` checks name uniqueness by iterating
//!   all running VMs, a superlinear cost with instance count; the paper
//!   disables it for a fair baseline, and so does [`Xl`] by default
//!   ([`Xl::validate_names`]);
//! * **restore copies everything** — restoring copies the *entire
//!   configured* memory from the image "regardless of the amount of memory
//!   that is actually used by the VM", making restore slightly slower than
//!   boot.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::rc::Rc;

use devices::udev::UdevBus;
use devices::{DevError, DeviceManager, VifConfig};
use hypervisor::domain::ClonePolicy;
use hypervisor::error::HvError;
use hypervisor::{Hypervisor, MemoryImage};
use netmux::IfaceId;
use sim_core::{Clock, CostModel, DomId, Pfn, TraceSink};
use xenstore::{XsError, Xenstore};

use crate::config::DomainConfig;
use crate::image::{GuestLayout, KernelImage};

/// Device-region pages consumed per vif: TX ring + RX ring + RX buffers.
pub const PAGES_PER_VIF: u64 = 2 + devices::net::RX_RING_SLOTS as u64;

/// Toolstack errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XlError {
    /// A domain with this name already exists (only with validation on).
    NameExists(String),
    /// Unknown saved-image slot.
    NoSuchImage(String),
    /// Unknown domain.
    NoSuchDomain(DomId),
    /// Hypervisor failure.
    Hv(HvError),
    /// Xenstore failure.
    Xs(XsError),
    /// Device failure.
    Dev(DevError),
}

impl fmt::Display for XlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XlError::NameExists(n) => write!(f, "domain name already in use: {n}"),
            XlError::NoSuchImage(s) => write!(f, "no saved image: {s}"),
            XlError::NoSuchDomain(d) => write!(f, "no such domain: {d}"),
            XlError::Hv(e) => write!(f, "{e}"),
            XlError::Xs(e) => write!(f, "{e}"),
            XlError::Dev(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for XlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            XlError::Hv(e) => Some(e),
            XlError::Xs(e) => Some(e),
            XlError::Dev(e) => Some(e),
            XlError::NameExists(_) | XlError::NoSuchImage(_) | XlError::NoSuchDomain(_) => None,
        }
    }
}

impl From<HvError> for XlError {
    fn from(e: HvError) -> Self {
        XlError::Hv(e)
    }
}
impl From<XsError> for XlError {
    fn from(e: XsError) -> Self {
        XlError::Xs(e)
    }
}
impl From<DevError> for XlError {
    fn from(e: DevError) -> Self {
        XlError::Dev(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, XlError>;

/// A live-domain record in the toolstack registry.
#[derive(Debug, Clone)]
pub struct DomRecord {
    /// Domain id.
    pub id: DomId,
    /// Domain name.
    pub name: String,
    /// Configuration it was created from.
    pub config: DomainConfig,
    /// Memory layout handed to the guest.
    pub layout: GuestLayout,
    /// Host interfaces of its vifs, in devid order.
    pub ifaces: Vec<IfaceId>,
}

/// A saved guest (the product of `xl save`).
#[derive(Debug, Clone)]
pub struct SavedGuest {
    config: DomainConfig,
    image: KernelImage,
    memory: MemoryImage,
}

/// Result of creating or restoring a domain.
#[derive(Debug, Clone)]
pub struct CreatedDomain {
    /// The new domain id.
    pub id: DomId,
    /// Its memory layout.
    pub layout: GuestLayout,
    /// Host interfaces of its vifs, in devid order.
    pub ifaces: Vec<IfaceId>,
}

/// The toolstack.
#[derive(Debug)]
pub struct Xl {
    clock: Clock,
    costs: Rc<CostModel>,
    /// Enables vanilla `xl`'s O(n) name-uniqueness scan (off by default,
    /// matching the paper's baseline methodology in §6.1).
    pub validate_names: bool,
    records: HashMap<u32, DomRecord>,
    /// Name → registered domain ids. Maintained on create, clone
    /// registration, restore, rename and destroy so the uniqueness
    /// check is an O(1) lookup on the host, not a registry scan — the
    /// §5 scan's *virtual-time* cost is still charged when
    /// `validate_names` is on (that is vanilla `xl`'s modelled
    /// behavior), but the simulator itself no longer pays O(live
    /// domains) per create. Duplicate names are legal while validation
    /// is off, hence the id *set*.
    names: HashMap<String, BTreeSet<u32>>,
    saved: HashMap<String, SavedGuest>,
    trace: TraceSink,
}

impl Xl {
    /// Creates a toolstack sharing the platform clock and cost model.
    pub fn new(clock: Clock, costs: Rc<CostModel>) -> Self {
        Xl {
            clock,
            costs,
            validate_names: false,
            records: HashMap::new(),
            names: HashMap::new(),
            saved: HashMap::new(),
            trace: TraceSink::default(),
        }
    }

    /// Attaches a trace sink (disabled by default); boot-path spans are
    /// recorded into it.
    pub fn attach_trace(&mut self, sink: TraceSink) {
        self.trace = sink;
    }

    /// The attached trace sink.
    pub fn trace(&self) -> &TraceSink {
        &self.trace
    }

    /// Lists `(name, id)` of registered domains, in id order.
    pub fn list(&self) -> Vec<(String, DomId)> {
        let mut v: Vec<_> = self
            .records
            .values()
            .map(|r| (r.name.clone(), r.id))
            .collect();
        v.sort_by_key(|(_, d)| *d);
        v
    }

    /// Looks up a record by domain id.
    pub fn record(&self, dom: DomId) -> Option<&DomRecord> {
        self.records.get(&dom.0)
    }

    /// Number of registered domains.
    pub fn domain_count(&self) -> usize {
        self.records.len()
    }

    fn check_name(&self, name: &str) -> Result<()> {
        if self.validate_names {
            // Vanilla xl iterates every running VM's name; that modelled
            // virtual-time cost is preserved. The host-side answer comes
            // from the name index in O(1), debug-asserted against the
            // scan it replaced.
            self.clock.advance(
                self.costs
                    .xl_name_check_per_domain
                    .saturating_mul(self.records.len() as u64),
            );
            let taken = self.names.get(name).is_some_and(|ids| !ids.is_empty());
            debug_assert_eq!(
                taken,
                self.records.values().any(|r| r.name == name),
                "name index disagrees with the registry scan for {name:?}"
            );
            if taken {
                return Err(XlError::NameExists(name.to_string()));
            }
        }
        Ok(())
    }

    /// Removes one id from a name's index entry, dropping the entry when
    /// it empties.
    fn unindex_name(&mut self, name: &str, id: u32) {
        if let Some(ids) = self.names.get_mut(name) {
            ids.remove(&id);
            if ids.is_empty() {
                self.names.remove(name);
            }
        }
    }

    /// Registers a record, keeping the name index in lockstep (including
    /// when an id is re-registered under a different name).
    fn insert_record(&mut self, rec: DomRecord) {
        let id = rec.id.0;
        let name = rec.name.clone();
        if let Some(old) = self.records.insert(id, rec) {
            if old.name != name {
                self.unindex_name(&old.name, id);
            }
        }
        self.names.entry(name).or_default().insert(id);
    }

    fn write_base_entries(
        &self,
        xs: &mut Xenstore,
        dom: DomId,
        cfg: &DomainConfig,
    ) -> Result<()> {
        let home = format!("/local/domain/{}", dom.0);
        xs.write(DomId::DOM0, &format!("{home}/name"), &cfg.name)?;
        xs.write(DomId::DOM0, &format!("{home}/domid"), &dom.0.to_string())?;
        xs.write(DomId::DOM0, &format!("{home}/memory/target"), &(cfg.memory_mib * 1024).to_string())?;
        xs.write(DomId::DOM0, &format!("{home}/memory/static-max"), &(cfg.memory_mib * 1024).to_string())?;
        xs.write(DomId::DOM0, &format!("{home}/cpu/0/availability"), "online")?;
        xs.write(DomId::DOM0, &format!("{home}/vm"), &format!("/vm/{}", cfg.name))?;
        xs.write(DomId::DOM0, &format!("/vm/{}/uuid", cfg.name), &format!("uuid-{}", dom.0))?;
        xs.write(DomId::DOM0, &format!("/vm/{}/start_time", cfg.name), "0")?;
        Ok(())
    }

    fn setup_devices(
        &self,
        hv: &mut Hypervisor,
        xs: &mut Xenstore,
        dm: &mut DeviceManager,
        udev: &mut UdevBus,
        dom: DomId,
        cfg: &DomainConfig,
        layout: &GuestLayout,
    ) -> Result<Vec<IfaceId>> {
        dm.setup_console_boot(hv, xs, udev, dom)?;
        let mut ifaces = Vec::new();
        for (i, vif) in cfg.vifs.iter().enumerate() {
            let base = layout.dev_region_start.0 + i as u64 * PAGES_PER_VIF;
            let iface = dm.setup_vif_boot(
                hv,
                xs,
                udev,
                dom,
                VifConfig {
                    devid: i as u32,
                    ip: vif.ip,
                    tx_pfn: Pfn(base),
                    rx_pfn: Pfn(base + 1),
                    rx_buffers: (base + 2..base + PAGES_PER_VIF).map(Pfn).collect(),
                },
            )?;
            ifaces.push(iface);
        }
        if let Some(export) = &cfg.p9fs_export {
            dm.setup_9pfs_boot(hv, xs, dom, export)?;
        }
        for (i, vbd) in cfg.vbds.iter().enumerate() {
            dm.setup_vbd_boot(xs, dom, i as u32, vbd.sectors)?;
        }
        if cfg.vsock {
            dm.setup_vsock_boot(hv, xs, dom)?;
        }
        for (i, busid) in cfg.usb_busids.iter().enumerate() {
            dm.setup_usb_boot(xs, dom, i as u32, busid)?;
        }
        // Userspace follow-up: every created vif is added to the bridge.
        for e in udev.drain() {
            if let devices::udev::UdevEvent::VifCreated { .. } = e {
                self.clock.advance(self.costs.bridge_add);
            }
        }
        Ok(ifaces)
    }

    fn populate_image(
        &self,
        hv: &mut Hypervisor,
        dom: DomId,
        image: &KernelImage,
    ) -> Result<()> {
        self.clock.advance(
            self.costs
                .image_load_per_page
                .saturating_mul(image.total_pages()),
        );
        // Text and rodata get distinctive content; data pages are written
        // at startup; bss stays zero.
        let mut pfn = 0u64;
        for _ in 0..image.text_pages {
            hv.fill_page(dom, Pfn(pfn), 0x7e7e_7e7e_0000_0000 | pfn)?;
            pfn += 1;
        }
        for _ in 0..image.rodata_pages {
            hv.fill_page(dom, Pfn(pfn), 0x0da7_a000_0000_0000 | pfn)?;
            pfn += 1;
        }
        for _ in 0..image.data_pages {
            hv.fill_page(dom, Pfn(pfn), 0xda7a_0000_0000_0000 | pfn)?;
            pfn += 1;
        }
        Ok(())
    }

    /// `xl create`: boots a new domain from a config and image. Successful
    /// creations feed the `xl.create` latency histogram.
    pub fn create(
        &mut self,
        hv: &mut Hypervisor,
        xs: &mut Xenstore,
        dm: &mut DeviceManager,
        udev: &mut UdevBus,
        cfg: &DomainConfig,
        image: &KernelImage,
    ) -> Result<CreatedDomain> {
        let start = self.clock.now();
        let r = self.create_impl(hv, xs, dm, udev, cfg, image);
        if r.is_ok() {
            self.trace
                .record_ns("xl.create", self.clock.now().since(start).as_ns());
        }
        r
    }

    fn create_impl(
        &mut self,
        hv: &mut Hypervisor,
        xs: &mut Xenstore,
        dm: &mut DeviceManager,
        udev: &mut UdevBus,
        cfg: &DomainConfig,
        image: &KernelImage,
    ) -> Result<CreatedDomain> {
        let span = self.trace.span("xl.create");
        span.attr("name", cfg.name.as_str());
        span.attr("memory_mib", cfg.memory_mib);
        self.clock.advance(self.costs.xl_create_base);
        self.check_name(&cfg.name)?;

        let dev_pages = cfg.vifs.len() as u64 * PAGES_PER_VIF;
        let layout = GuestLayout::compute(cfg.memory_mib, image, dev_pages);

        let dom = hv.create_domain(&cfg.name, cfg.memory_mib, cfg.vcpus)?;
        {
            let _s = self.trace.span("xl.xenstore_init");
            xs.introduce_domain(dom, None)?;
            self.write_base_entries(xs, dom, cfg)?;
        }
        {
            let s = self.trace.span("xl.image_load");
            s.attr("pages", image.total_pages());
            self.populate_image(hv, dom, image)?;
        }
        let ifaces = {
            let s = self.trace.span("xl.device_setup");
            s.attr("vifs", cfg.vifs.len());
            self.setup_devices(hv, xs, dm, udev, dom, cfg, &layout)?
        };

        hv.set_clone_policy(
            dom,
            ClonePolicy {
                enabled: cfg.max_clones > 0,
                max_clones: cfg.max_clones,
                resume_children: cfg.resume_clones,
            },
        )?;

        self.clock.advance(self.costs.guest_boot_fixed);
        hv.unpause(dom)?;
        self.insert_record(DomRecord {
            id: dom,
            name: cfg.name.clone(),
            config: cfg.clone(),
            layout,
            ifaces: ifaces.clone(),
        });
        Ok(CreatedDomain { id: dom, layout, ifaces })
    }

    /// Registers a clone created by `xencloned` in the instance registry
    /// (name uniqueness is guaranteed by construction — no scan).
    pub fn register_clone(&mut self, parent: DomId, child: DomId, name: &str, ifaces: Vec<IfaceId>) {
        if let Some(p) = self.records.get(&parent.0).cloned() {
            self.insert_record(DomRecord {
                id: child,
                name: name.to_string(),
                config: p.config.clone(),
                layout: p.layout,
                ifaces,
            });
        }
    }

    /// `xl rename`: renames a live domain, updating the registry, the
    /// name index and the domain's Xenstore name node. Renaming to the
    /// current name is a no-op; with `validate_names` on, the target
    /// name is checked for uniqueness exactly like a create.
    pub fn rename(&mut self, xs: &mut Xenstore, dom: DomId, new_name: &str) -> Result<()> {
        let Some(rec) = self.records.get(&dom.0) else {
            return Err(XlError::NoSuchDomain(dom));
        };
        if rec.name == new_name {
            return Ok(());
        }
        self.check_name(new_name)?;
        xs.write(
            DomId::DOM0,
            &format!("/local/domain/{}/name", dom.0),
            new_name,
        )?;
        let rec = self.records.get_mut(&dom.0).expect("checked above");
        let old = std::mem::replace(&mut rec.name, new_name.to_string());
        self.unindex_name(&old, dom.0);
        self.names.entry(new_name.to_string()).or_default().insert(dom.0);
        Ok(())
    }

    /// `xl destroy`: tears down a domain across all components.
    pub fn destroy(
        &mut self,
        hv: &mut Hypervisor,
        xs: &mut Xenstore,
        dm: &mut DeviceManager,
        udev: &mut UdevBus,
        dom: DomId,
    ) -> Result<()> {
        if !hv.domain_exists(dom) {
            return Err(XlError::NoSuchDomain(dom));
        }
        self.clock.advance(self.costs.xl_destroy_base);
        dm.forget_domain(udev, dom);
        xs.forget_domain(dom);
        hv.destroy_domain(dom)?;
        if let Some(rec) = self.records.remove(&dom.0) {
            self.unindex_name(&rec.name, dom.0);
        }
        udev.drain();
        Ok(())
    }

    /// `xl save`: snapshots a domain's memory and config into `slot`, then
    /// destroys the domain.
    pub fn save(
        &mut self,
        hv: &mut Hypervisor,
        xs: &mut Xenstore,
        dm: &mut DeviceManager,
        udev: &mut UdevBus,
        dom: DomId,
        slot: &str,
        image: &KernelImage,
    ) -> Result<()> {
        let span = self.trace.span("xl.save");
        span.attr("dom", dom.0);
        let rec = self
            .records
            .get(&dom.0)
            .cloned()
            .ok_or(XlError::NoSuchDomain(dom))?;
        let memory = hv.snapshot_memory(dom)?;
        self.clock.advance(
            self.costs
                .save_per_page
                .saturating_mul(memory.pages.len() as u64),
        );
        self.saved.insert(
            slot.to_string(),
            SavedGuest {
                config: rec.config,
                image: image.clone(),
                memory,
            },
        );
        self.destroy(hv, xs, dm, udev, dom)
    }

    /// `xl restore`: recreates a domain from a saved image. The *entire*
    /// configured memory is copied back from the image.
    pub fn restore(
        &mut self,
        hv: &mut Hypervisor,
        xs: &mut Xenstore,
        dm: &mut DeviceManager,
        udev: &mut UdevBus,
        slot: &str,
        new_name: Option<&str>,
    ) -> Result<CreatedDomain> {
        let span = self.trace.span("xl.restore");
        span.attr("slot", slot);
        let SavedGuest {
            mut config,
            image,
            memory,
        } = self
            .saved
            .get(slot)
            .cloned()
            .ok_or_else(|| XlError::NoSuchImage(slot.to_string()))?;
        if let Some(n) = new_name {
            config.name = n.to_string();
        }
        self.clock.advance(self.costs.xl_create_base);
        self.check_name(&config.name)?;

        let dev_pages = config.vifs.len() as u64 * PAGES_PER_VIF;
        let layout = GuestLayout::compute(config.memory_mib, &image, dev_pages);

        let dom = hv.create_domain(&config.name, config.memory_mib, config.vcpus)?;
        xs.introduce_domain(dom, None)?;
        self.write_base_entries(xs, dom, &config)?;

        // Restore is dominated by copying all configured memory back.
        self.clock.advance(
            self.costs
                .restore_per_page
                .saturating_mul(memory.p2m_size),
        );
        hv.load_image(dom, &memory)?;

        let ifaces = self.setup_devices(hv, xs, dm, udev, dom, &config, &layout)?;
        hv.set_clone_policy(
            dom,
            ClonePolicy {
                enabled: config.max_clones > 0,
                max_clones: config.max_clones,
                resume_children: config.resume_clones,
            },
        )?;
        hv.unpause(dom)?;
        self.insert_record(DomRecord {
            id: dom,
            name: config.name.clone(),
            config,
            layout,
            ifaces: ifaces.clone(),
        });
        Ok(CreatedDomain { id: dom, layout, ifaces })
    }

    /// Whether a saved image exists in `slot`.
    pub fn has_saved(&self, slot: &str) -> bool {
        self.saved.contains_key(slot)
    }

    /// Modelled toolstack resident memory (registry and libxl context) for
    /// Dom0 accounting.
    pub fn resident_bytes(&self) -> u64 {
        const PER_DOMAIN: u64 = 24 * 1024;
        self.records.len() as u64 * PER_DOMAIN
    }

    /// Cross-checks the name index against a full registry scan; one
    /// detail string per divergence (empty when consistent). The state
    /// auditor surfaces these as its index-consistency invariant.
    pub fn audit_name_index(&self) -> Vec<String> {
        let mut expect: BTreeMap<&str, BTreeSet<u32>> = BTreeMap::new();
        for r in self.records.values() {
            expect.entry(r.name.as_str()).or_default().insert(r.id.0);
        }
        let mut bad = Vec::new();
        for (name, ids) in &self.names {
            match expect.get(name.as_str()) {
                Some(e) if e == ids => {}
                other => bad.push(format!(
                    "name index {name:?} -> {ids:?} != registry scan {other:?}"
                )),
            }
        }
        for (name, ids) in expect {
            if !self.names.contains_key(name) {
                bad.push(format!(
                    "registry name {name:?} -> {ids:?} missing from the name index"
                ));
            }
        }
        bad
    }

    /// Test-only: plants (or removes) a name-index entry without touching
    /// the registry, so the index-consistency audit can prove it detects
    /// drift between the index and the scan it replaced.
    pub fn corrupt_name_index_for_test(&mut self, name: &str, id: u32, insert: bool) {
        if insert {
            self.names.entry(name.to_string()).or_default().insert(id);
        } else {
            self.unindex_name(name, id);
        }
    }
}

#[cfg(test)]
mod tests {
    use std::net::Ipv4Addr;

    use hypervisor::MachineConfig;

    use super::*;

    struct World {
        clock: Clock,
        hv: Hypervisor,
        xs: Xenstore,
        dm: DeviceManager,
        udev: UdevBus,
        xl: Xl,
    }

    fn world() -> World {
        let clock = Clock::new();
        let costs = Rc::new(CostModel::calibrated());
        World {
            clock: clock.clone(),
            hv: Hypervisor::new(
                clock.clone(),
                costs.clone(),
                &MachineConfig {
                    guest_pool_mib: 256,
                    cores: 4,
                    notification_ring_capacity: 16,
                },
            ),
            xs: Xenstore::new(clock.clone(), costs.clone()),
            dm: DeviceManager::new(clock.clone(), costs.clone()),
            udev: UdevBus::new(),
            xl: Xl::new(clock, costs),
        }
    }

    fn udp_cfg(name: &str) -> DomainConfig {
        DomainConfig::builder(name)
            .memory_mib(4)
            .vif(Ipv4Addr::new(10, 0, 0, 2))
            .max_clones(100)
            .build()
    }

    #[test]
    fn create_boots_a_complete_guest() {
        let mut w = world();
        let img = KernelImage::minios("udp");
        let created = w
            .xl
            .create(&mut w.hv, &mut w.xs, &mut w.dm, &mut w.udev, &udp_cfg("udp"), &img)
            .unwrap();
        let dom = created.id;
        assert!(w.hv.domain(dom).unwrap().is_runnable());
        assert_eq!(w.xs.read(DomId::DOM0, &format!("/local/domain/{}/name", dom.0)).unwrap(), "udp");
        assert!(w.dm.vif(dom, 0).unwrap().is_connected());
        assert!(w.dm.console_attached(dom));
        assert_eq!(created.ifaces.len(), 1);
        assert_eq!(w.xl.list().len(), 1);
        // Clone policy flowed through.
        assert!(w.hv.domain(dom).unwrap().clone_policy.enabled);
    }

    #[test]
    fn boot_takes_on_the_order_of_100ms() {
        let mut w = world();
        let img = KernelImage::minios("udp");
        let t0 = w.clock.now();
        w.xl
            .create(&mut w.hv, &mut w.xs, &mut w.dm, &mut w.udev, &udp_cfg("udp"), &img)
            .unwrap();
        let boot = w.clock.now().since(t0).as_ms_f64();
        assert!((40.0..400.0).contains(&boot), "boot = {boot} ms");
    }

    #[test]
    fn name_validation_costs_and_rejects() {
        let mut w = world();
        w.xl.validate_names = true;
        let img = KernelImage::minios("udp");
        w.xl
            .create(&mut w.hv, &mut w.xs, &mut w.dm, &mut w.udev, &udp_cfg("dup"), &img)
            .unwrap();
        let r = w
            .xl
            .create(&mut w.hv, &mut w.xs, &mut w.dm, &mut w.udev, &udp_cfg("dup"), &img);
        assert!(matches!(r, Err(XlError::NameExists(_))));
    }

    fn plain_cfg(name: &str) -> DomainConfig {
        DomainConfig::builder(name).memory_mib(4).build()
    }

    /// Pins the name index across the sequences that historically break
    /// maintained indexes: destroy-then-recreate under the same name
    /// (with domid reuse), rename chains, and duplicate rejection.
    #[test]
    fn name_index_survives_create_destroy_reuse_and_rename() {
        let mut w = world();
        w.xl.validate_names = true;
        let img = KernelImage::unikraft("fn");
        let create = |w: &mut World, name: &str| {
            w.xl
                .create(&mut w.hv, &mut w.xs, &mut w.dm, &mut w.udev, &plain_cfg(name), &img)
                .map(|c| c.id)
        };

        let a = create(&mut w, "one").unwrap();
        let b = create(&mut w, "two").unwrap();
        assert!(matches!(create(&mut w, "one"), Err(XlError::NameExists(_))));

        // Destroy frees the name; the recreate reuses the freed domid.
        w.xl.destroy(&mut w.hv, &mut w.xs, &mut w.dm, &mut w.udev, a).unwrap();
        let a2 = create(&mut w, "one").unwrap();
        assert_eq!(a2, a, "lowest freed domid is reused");
        assert!(w.xl.audit_name_index().is_empty());

        // Rename frees the old name and claims the new one.
        w.xl.rename(&mut w.xs, a2, "three").unwrap();
        assert_eq!(
            w.xs.read(DomId::DOM0, &format!("/local/domain/{}/name", a2.0)).unwrap(),
            "three"
        );
        let c = create(&mut w, "one").unwrap();
        assert!(matches!(
            w.xl.rename(&mut w.xs, c, "two"),
            Err(XlError::NameExists(_))
        ));
        w.xl.rename(&mut w.xs, c, "one").unwrap(); // same-name no-op
        assert!(matches!(
            w.xl.rename(&mut w.xs, DomId(999), "x"),
            Err(XlError::NoSuchDomain(_))
        ));

        w.xl.destroy(&mut w.hv, &mut w.xs, &mut w.dm, &mut w.udev, b).unwrap();
        assert!(w.xl.audit_name_index().is_empty());
        assert_eq!(w.xl.list().len(), 2);
    }

    #[test]
    fn destroy_releases_everything() {
        let mut w = world();
        let img = KernelImage::minios("udp");
        let free0 = w.hv.free_pages();
        let d = w
            .xl
            .create(&mut w.hv, &mut w.xs, &mut w.dm, &mut w.udev, &udp_cfg("udp"), &img)
            .unwrap()
            .id;
        w.xl.destroy(&mut w.hv, &mut w.xs, &mut w.dm, &mut w.udev, d).unwrap();
        assert_eq!(w.hv.free_pages(), free0);
        assert_eq!(w.xl.domain_count(), 0);
        assert!(!w.xs.exists(&format!("/local/domain/{}", d.0)));
        assert!(matches!(
            w.xl.destroy(&mut w.hv, &mut w.xs, &mut w.dm, &mut w.udev, d),
            Err(XlError::NoSuchDomain(_))
        ));
    }

    #[test]
    fn save_restore_preserves_memory_and_is_slower_than_boot() {
        let mut w = world();
        let img = KernelImage::minios("udp");
        let t0 = w.clock.now();
        let d = w
            .xl
            .create(&mut w.hv, &mut w.xs, &mut w.dm, &mut w.udev, &udp_cfg("udp"), &img)
            .unwrap()
            .id;
        let boot_time = w.clock.now().since(t0);

        w.hv.write_page(d, Pfn(300), 0, b"app state").unwrap();
        w.xl
            .save(&mut w.hv, &mut w.xs, &mut w.dm, &mut w.udev, d, "slot0", &img)
            .unwrap();
        assert!(w.xl.has_saved("slot0"));
        assert!(!w.hv.domain_exists(d));

        let t1 = w.clock.now();
        let restored = w
            .xl
            .restore(&mut w.hv, &mut w.xs, &mut w.dm, &mut w.udev, "slot0", None)
            .unwrap();
        let restore_time = w.clock.now().since(t1);

        let mut buf = [0u8; 9];
        w.hv.read_page(restored.id, Pfn(300), 0, &mut buf).unwrap();
        assert_eq!(&buf, b"app state");
        assert!(
            restore_time > boot_time,
            "restore ({restore_time}) must exceed boot ({boot_time})"
        );
    }

    #[test]
    fn restore_missing_slot_fails() {
        let mut w = world();
        assert!(matches!(
            w.xl.restore(&mut w.hv, &mut w.xs, &mut w.dm, &mut w.udev, "nope", None),
            Err(XlError::NoSuchImage(_))
        ));
    }

    #[test]
    fn config_parse_to_boot_roundtrip() {
        let mut w = world();
        let cfg = DomainConfig::parse(
            "name = \"parsed\"\nmemory = 8\nvif = \"10.0.0.9\"\nmax_clones = 4",
        )
        .unwrap();
        let img = KernelImage::unikraft("app");
        let d = w
            .xl
            .create(&mut w.hv, &mut w.xs, &mut w.dm, &mut w.udev, &cfg, &img)
            .unwrap();
        assert_eq!(w.hv.domain(d.id).unwrap().clone_policy.max_clones, 4);
        assert_eq!(d.layout.ram_pages, 2048);
    }
}

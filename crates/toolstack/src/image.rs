//! Unikernel kernel images.
//!
//! A unikernel image statically links the application with its library OS;
//! "statically linked unikernels tend to have high binary sizes, with a
//! significant proportion of the memory containing text sections, making
//! them great candidates for increasing the memory density by means of
//! cloning" (§4.1). The image model records the section split so the boot
//! path can populate guest memory (text/rodata become the shared,
//! never-written pages; data/bss are written during execution).

use sim_core::{ids::mib_to_pages, Pfn};

/// A kernel image: sizes of the sections that end up in guest memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelImage {
    /// Image name (e.g. "minios-udp").
    pub name: String,
    /// Pages of executable code.
    pub text_pages: u64,
    /// Pages of read-only data.
    pub rodata_pages: u64,
    /// Pages of initialized data (written at startup).
    pub data_pages: u64,
    /// Pages of zero-initialized data.
    pub bss_pages: u64,
}

impl KernelImage {
    /// A Mini-OS-style tiny image (the Fig. 4/5 UDP server): ~700 KiB of
    /// text+rodata, a little data.
    pub fn minios(name: &str) -> Self {
        KernelImage {
            name: name.to_string(),
            text_pages: 120,
            rodata_pages: 48,
            data_pages: 16,
            bss_pages: 24,
        }
    }

    /// A Unikraft image bundling an application (NGINX/Redis-class): a few
    /// MiB of text+rodata.
    pub fn unikraft(name: &str) -> Self {
        KernelImage {
            name: name.to_string(),
            text_pages: 420,
            rodata_pages: 180,
            data_pages: 64,
            bss_pages: 96,
        }
    }

    /// A Unikraft+Python interpreter image (the 6 MB FaaS image of §7.3).
    pub fn unikraft_python(name: &str) -> Self {
        KernelImage {
            name: name.to_string(),
            text_pages: 1100,
            rodata_pages: 380,
            data_pages: 96,
            bss_pages: 128,
        }
    }

    /// Total pages the image occupies in memory.
    pub fn total_pages(&self) -> u64 {
        self.text_pages + self.rodata_pages + self.data_pages + self.bss_pages
    }

    /// Pages that stay read-only for the image's lifetime (maximally
    /// shareable under cloning).
    pub fn readonly_pages(&self) -> u64 {
        self.text_pages + self.rodata_pages
    }
}

/// The memory layout the toolstack gives a booted guest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuestLayout {
    /// Total RAM pages (excluding the special pages past RAM).
    pub ram_pages: u64,
    /// Pages occupied by the kernel image at the bottom of RAM.
    pub image_pages: u64,
    /// First heap page.
    pub heap_start: Pfn,
    /// Heap size in pages (between the image and the device pages).
    pub heap_pages: u64,
    /// First page of the device region at the top of RAM (rings and RX
    /// buffers are carved from here, growing downwards).
    pub dev_region_start: Pfn,
}

impl GuestLayout {
    /// Computes the layout for `memory_mib` of RAM, an image, and
    /// `dev_pages` of ring/buffer pages at the top.
    ///
    /// # Panics
    ///
    /// Panics if the image and device pages do not fit in RAM.
    pub fn compute(memory_mib: u64, image: &KernelImage, dev_pages: u64) -> GuestLayout {
        let ram_pages = mib_to_pages(memory_mib.max(4));
        let image_pages = image.total_pages();
        assert!(
            image_pages + dev_pages < ram_pages,
            "image ({image_pages}) + devices ({dev_pages}) exceed RAM ({ram_pages})"
        );
        let dev_region_start = Pfn(ram_pages - dev_pages);
        GuestLayout {
            ram_pages,
            image_pages,
            heap_start: Pfn(image_pages),
            heap_pages: ram_pages - dev_pages - image_pages,
            dev_region_start,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section_totals() {
        let img = KernelImage::minios("udp");
        assert_eq!(img.total_pages(), 208);
        assert_eq!(img.readonly_pages(), 168);
        assert!(KernelImage::unikraft_python("py").total_pages() > img.total_pages());
    }

    #[test]
    fn layout_partitions_ram() {
        let img = KernelImage::minios("udp");
        let l = GuestLayout::compute(4, &img, 258);
        assert_eq!(l.ram_pages, 1024);
        assert_eq!(l.heap_start, Pfn(208));
        assert_eq!(l.heap_pages, 1024 - 258 - 208);
        assert_eq!(l.dev_region_start, Pfn(1024 - 258));
        // The three regions tile RAM exactly.
        assert_eq!(l.image_pages + l.heap_pages + 258, l.ram_pages);
    }

    #[test]
    #[should_panic(expected = "exceed RAM")]
    fn oversized_image_rejected() {
        let img = KernelImage::unikraft_python("py");
        GuestLayout::compute(4, &img, 600);
    }
}

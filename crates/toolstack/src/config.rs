//! Domain configuration: the moral equivalent of an `xl` config file.
//!
//! Nephele extends the configuration with the maximum number of clones; "a
//! guest can be cloned only if its xl configuration file specifies a
//! non-zero value for the maximum number of clones" (§5.1).

use std::net::Ipv4Addr;

/// A virtual network interface specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VifSpec {
    /// The guest's IP on this interface.
    pub ip: Ipv4Addr,
}

/// A COW block device specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VbdSpec {
    /// Base image size in 512-byte sectors.
    pub sectors: u64,
}

/// Full domain configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainConfig {
    /// Domain name (must be unique when validation is enabled).
    pub name: String,
    /// RAM in MiB (Xen minimum of 4 MiB applies).
    pub memory_mib: u64,
    /// Number of vCPUs.
    pub vcpus: u32,
    /// Network interfaces.
    pub vifs: Vec<VifSpec>,
    /// 9pfs root filesystem export path in Dom0, if any.
    pub p9fs_export: Option<String>,
    /// COW block devices.
    pub vbds: Vec<VbdSpec>,
    /// Whether the guest gets a vsock stream device.
    pub vsock: bool,
    /// Host bus ids of USB devices passed through exclusively.
    pub usb_busids: Vec<String>,
    /// Maximum clones this domain may create (0 disables cloning).
    pub max_clones: u32,
    /// Whether clones resume immediately after their second stage.
    pub resume_clones: bool,
}

impl DomainConfig {
    /// Starts a builder with the defaults of the paper's Mini-OS guest:
    /// 4 MiB of RAM, one vCPU, no devices, cloning disabled.
    pub fn builder(name: &str) -> DomainConfigBuilder {
        DomainConfigBuilder {
            cfg: DomainConfig {
                name: name.to_string(),
                memory_mib: 4,
                vcpus: 1,
                vifs: Vec::new(),
                p9fs_export: None,
                vbds: Vec::new(),
                vsock: false,
                usb_busids: Vec::new(),
                max_clones: 0,
                resume_clones: true,
            },
        }
    }

    /// Parses a minimal `xl`-style config: `key = value` lines, `#`
    /// comments; supported keys: `name`, `memory`, `vcpus`, `vif` (IP,
    /// repeatable), `p9fs`, `vbd` (sector count, repeatable), `vsock`,
    /// `usb` (host bus id, repeatable), `max_clones`, `resume_clones`.
    ///
    /// # Examples
    ///
    /// ```
    /// use toolstack::config::DomainConfig;
    ///
    /// let cfg = DomainConfig::parse(r#"
    ///     name = "udp-server"
    ///     memory = 4
    ///     vcpus = 1
    ///     vif = "10.0.0.2"
    ///     max_clones = 1000
    /// "#).unwrap();
    /// assert_eq!(cfg.name, "udp-server");
    /// assert_eq!(cfg.vifs.len(), 1);
    /// ```
    pub fn parse(text: &str) -> Result<DomainConfig, String> {
        let mut b = DomainConfig::builder("");
        let mut saw_name = false;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected key = value", lineno + 1))?;
            let key = key.trim();
            let value = value.trim().trim_matches('"');
            match key {
                "name" => {
                    b.cfg.name = value.to_string();
                    saw_name = true;
                }
                "memory" => {
                    b.cfg.memory_mib = value
                        .parse()
                        .map_err(|_| format!("line {}: bad memory", lineno + 1))?;
                }
                "vcpus" => {
                    b.cfg.vcpus = value
                        .parse()
                        .map_err(|_| format!("line {}: bad vcpus", lineno + 1))?;
                }
                "vif" => {
                    let ip: Ipv4Addr = value
                        .parse()
                        .map_err(|_| format!("line {}: bad vif ip", lineno + 1))?;
                    b.cfg.vifs.push(VifSpec { ip });
                }
                "p9fs" => b.cfg.p9fs_export = Some(value.to_string()),
                "vbd" => {
                    let sectors: u64 = value
                        .parse()
                        .map_err(|_| format!("line {}: bad vbd sector count", lineno + 1))?;
                    b.cfg.vbds.push(VbdSpec { sectors });
                }
                "vsock" => {
                    b.cfg.vsock = matches!(value, "1" | "true" | "yes");
                }
                "usb" => b.cfg.usb_busids.push(value.to_string()),
                "max_clones" => {
                    b.cfg.max_clones = value
                        .parse()
                        .map_err(|_| format!("line {}: bad max_clones", lineno + 1))?;
                }
                "resume_clones" => {
                    b.cfg.resume_clones = matches!(value, "1" | "true" | "yes");
                }
                other => return Err(format!("line {}: unknown key '{other}'", lineno + 1)),
            }
        }
        if !saw_name || b.cfg.name.is_empty() {
            return Err("missing name".to_string());
        }
        Ok(b.build())
    }

    /// Whether cloning is enabled for this configuration.
    pub fn cloning_enabled(&self) -> bool {
        self.max_clones > 0
    }
}

/// Fluent builder for [`DomainConfig`].
#[derive(Debug, Clone)]
pub struct DomainConfigBuilder {
    cfg: DomainConfig,
}

impl DomainConfigBuilder {
    /// Sets the RAM size in MiB.
    pub fn memory_mib(mut self, mib: u64) -> Self {
        self.cfg.memory_mib = mib;
        self
    }

    /// Sets the vCPU count.
    pub fn vcpus(mut self, n: u32) -> Self {
        self.cfg.vcpus = n;
        self
    }

    /// Adds a vif with the given IP.
    pub fn vif(mut self, ip: Ipv4Addr) -> Self {
        self.cfg.vifs.push(VifSpec { ip });
        self
    }

    /// Mounts a 9pfs root exported from the given Dom0 path.
    pub fn p9fs(mut self, export: &str) -> Self {
        self.cfg.p9fs_export = Some(export.to_string());
        self
    }

    /// Adds a COW block device over a base image of `sectors` sectors.
    pub fn vbd(mut self, sectors: u64) -> Self {
        self.cfg.vbds.push(VbdSpec { sectors });
        self
    }

    /// Gives the guest a vsock stream device.
    pub fn vsock(mut self) -> Self {
        self.cfg.vsock = true;
        self
    }

    /// Passes through the USB device at host bus id `busid` exclusively.
    pub fn usb(mut self, busid: &str) -> Self {
        self.cfg.usb_busids.push(busid.to_string());
        self
    }

    /// Permits up to `n` clones.
    pub fn max_clones(mut self, n: u32) -> Self {
        self.cfg.max_clones = n;
        self
    }

    /// Controls whether clones resume automatically.
    pub fn resume_clones(mut self, yes: bool) -> Self {
        self.cfg.resume_clones = yes;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> DomainConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_match_paper_guest() {
        let cfg = DomainConfig::builder("mini").build();
        assert_eq!(cfg.memory_mib, 4);
        assert_eq!(cfg.vcpus, 1);
        assert!(!cfg.cloning_enabled());
    }

    #[test]
    fn parse_full_config() {
        let cfg = DomainConfig::parse(
            r#"
            # the fig-4 guest
            name = "udp"
            memory = 4
            vcpus = 1
            vif = "10.0.0.2"
            p9fs = "/export/root"
            vbd = 64
            vsock = true
            usb = "1-1.4"
            max_clones = 1000
            resume_clones = true
            "#,
        )
        .unwrap();
        assert_eq!(cfg.name, "udp");
        assert_eq!(cfg.vifs[0].ip, Ipv4Addr::new(10, 0, 0, 2));
        assert_eq!(cfg.p9fs_export.as_deref(), Some("/export/root"));
        assert_eq!(cfg.vbds, vec![VbdSpec { sectors: 64 }]);
        assert!(cfg.vsock);
        assert_eq!(cfg.usb_busids, vec!["1-1.4".to_string()]);
        assert_eq!(cfg.max_clones, 1000);
        assert!(cfg.cloning_enabled());
    }

    #[test]
    fn parse_rejects_bad_vbd() {
        assert!(DomainConfig::parse("name = \"x\"\nvbd = huge").is_err());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(DomainConfig::parse("name = \"x\"\nbogus_key = 1").is_err());
        assert!(DomainConfig::parse("memory = 4").is_err(), "missing name");
        assert!(DomainConfig::parse("name = \"x\"\nmemory = lots").is_err());
        assert!(DomainConfig::parse("name = \"x\"\njust a line").is_err());
    }
}

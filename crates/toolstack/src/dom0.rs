//! Dom0 memory accounting.
//!
//! For Fig. 5 the paper measures the free memory inside Dom0 (with `free`)
//! alongside the hypervisor pool. Dom0 memory is consumed by base services,
//! the Xenstore daemon's resident set (up to ~350 MB in the paper's run),
//! backend driver state and per-instance toolstack bookkeeping — and it
//! declines "with the same rate for both booting and cloning given that the
//! Xenstore entries and the backends data are duplicated for each clone".

use devices::DeviceManager;
use xenstore::Xenstore;

use crate::xl::Xl;

/// The Dom0 memory model.
#[derive(Debug, Clone)]
pub struct Dom0Model {
    /// Total Dom0 RAM in MiB (the paper assigns 4 GiB).
    pub total_mib: u64,
    /// Baseline resident set of the kernel and system services in MiB.
    pub base_services_mib: u64,
}

impl Default for Dom0Model {
    fn default() -> Self {
        Dom0Model {
            total_mib: 4 * 1024,
            base_services_mib: 420,
        }
    }
}

impl Dom0Model {
    /// Total Dom0 memory in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total_mib * 1024 * 1024
    }

    /// Bytes currently used by Dom0 (base + xenstored + backends +
    /// toolstack registry).
    pub fn used_bytes(&self, xs: &Xenstore, dm: &DeviceManager, xl: &Xl) -> u64 {
        self.base_services_mib * 1024 * 1024
            + xs.resident_bytes()
            + dm.dom0_backend_bytes()
            + xl.resident_bytes()
    }

    /// Free Dom0 bytes (saturating at zero).
    pub fn free_bytes(&self, xs: &Xenstore, dm: &DeviceManager, xl: &Xl) -> u64 {
        self.total_bytes().saturating_sub(self.used_bytes(xs, dm, xl))
    }
}

#[cfg(test)]
mod tests {
    use std::rc::Rc;

    use sim_core::{Clock, CostModel};

    use super::*;

    #[test]
    fn free_declines_with_state() {
        let clock = Clock::new();
        let costs = Rc::new(CostModel::free());
        let mut xs = Xenstore::new(clock.clone(), costs.clone());
        let dm = DeviceManager::new(clock.clone(), costs.clone());
        let xl = Xl::new(clock, costs);
        let model = Dom0Model::default();

        let free0 = model.free_bytes(&xs, &dm, &xl);
        assert!(free0 < model.total_bytes());
        for i in 0..100 {
            xs.write(sim_core::DomId::DOM0, &format!("/tool/pad/{i}"), "x").unwrap();
        }
        assert!(model.free_bytes(&xs, &dm, &xl) < free0);
    }
}

//! The Xen toolstack model: `xl`, domain configuration, kernel images and
//! Dom0 accounting.
//!
//! This crate reproduces the instantiation-side machinery of the paper's
//! evaluation: the full boot path (hypervisor allocations, image loading,
//! per-entry Xenstore population, device negotiation, bridging), `xl
//! save`/`xl restore`, vanilla `xl`'s optional O(n) name-uniqueness scan,
//! and the Dom0 memory model used by Fig. 5.

pub mod config;
pub mod dom0;
pub mod image;
pub mod xl;

pub use config::{DomainConfig, DomainConfigBuilder, VifSpec};
pub use dom0::Dom0Model;
pub use image::{GuestLayout, KernelImage};
pub use xl::{CreatedDomain, DomRecord, Xl, XlError, PAGES_PER_VIF};

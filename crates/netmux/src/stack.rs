//! A minimal lwip-like UDP/TCP socket stack.
//!
//! Modelled on the lwIP stack Unikraft links against: UDP sockets and a
//! small TCP state machine sufficient for the paper's workloads (HTTP
//! request/response, Redis commands, wrk/ab load generators). The stack is
//! a *pure* state machine — packets in, `(events, reply packets)` out — so
//! the same code serves the unikernel frontends and the Dom0-side load
//! generators.

use std::collections::{HashMap, VecDeque};
use std::net::Ipv4Addr;

use crate::packet::{FlowKey, L4, MacAddr, Packet, TcpFlags};

/// Identifies an established TCP connection within one stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConnId(pub u64);

/// Events surfaced to the application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SockEvent {
    /// A UDP datagram arrived on a bound port.
    UdpData {
        /// Local (bound) port.
        port: u16,
        /// Sender address.
        src_ip: Ipv4Addr,
        /// Sender port.
        src_port: u16,
        /// Payload.
        payload: Vec<u8>,
    },
    /// A new TCP connection was accepted on a listening port.
    TcpAccepted {
        /// Connection handle.
        conn: ConnId,
        /// The listening port.
        port: u16,
    },
    /// An outbound TCP connection completed its handshake.
    TcpConnected {
        /// Connection handle.
        conn: ConnId,
    },
    /// Data arrived on an established connection.
    TcpData {
        /// Connection handle.
        conn: ConnId,
        /// The bytes.
        data: Vec<u8>,
    },
    /// The peer closed the connection.
    TcpClosed {
        /// Connection handle.
        conn: ConnId,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TcpState {
    SynSent,
    Established,
    Closed,
}

#[derive(Debug, Clone)]
struct TcpConn {
    id: ConnId,
    /// Our view: local = this stack's side.
    local_port: u16,
    remote_ip: Ipv4Addr,
    remote_port: u16,
    remote_mac: MacAddr,
    state: TcpState,
    next_seq: u32,
    last_ack: u32,
}

/// The socket stack for one host (guest or Dom0 endpoint).
#[derive(Debug, Clone)]
pub struct NetStack {
    mac: MacAddr,
    ip: Ipv4Addr,
    udp_bound: HashMap<u16, ()>,
    tcp_listeners: HashMap<u16, ()>,
    conns: HashMap<FlowKey, TcpConn>,
    conn_index: HashMap<ConnId, FlowKey>,
    next_conn: u64,
    next_ephemeral: u16,
    /// Events not yet collected by the application.
    pending: VecDeque<SockEvent>,
}

impl NetStack {
    /// Creates a stack with the host's MAC and IP.
    pub fn new(mac: MacAddr, ip: Ipv4Addr) -> Self {
        NetStack {
            mac,
            ip,
            udp_bound: HashMap::new(),
            tcp_listeners: HashMap::new(),
            conns: HashMap::new(),
            conn_index: HashMap::new(),
            next_conn: 1,
            next_ephemeral: 32768,
            pending: VecDeque::new(),
        }
    }

    /// The stack's IP.
    pub fn ip(&self) -> Ipv4Addr {
        self.ip
    }

    /// The stack's MAC.
    pub fn mac(&self) -> MacAddr {
        self.mac
    }

    /// Binds a UDP port.
    pub fn udp_bind(&mut self, port: u16) {
        self.udp_bound.insert(port, ());
    }

    /// Builds a UDP datagram from this stack.
    pub fn udp_send(
        &self,
        dst_mac: MacAddr,
        dst_ip: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
        payload: Vec<u8>,
    ) -> Packet {
        Packet::udp(self.mac, dst_mac, self.ip, dst_ip, src_port, dst_port, payload)
    }

    /// Starts listening on a TCP port.
    pub fn tcp_listen(&mut self, port: u16) {
        self.tcp_listeners.insert(port, ());
    }

    /// Number of established connections.
    pub fn established_count(&self) -> usize {
        self.conns
            .values()
            .filter(|c| c.state == TcpState::Established)
            .count()
    }

    fn alloc_conn(&mut self) -> ConnId {
        let id = ConnId(self.next_conn);
        self.next_conn += 1;
        id
    }

    /// Opens a TCP connection; returns the handle and the SYN to transmit.
    pub fn tcp_connect(
        &mut self,
        dst_mac: MacAddr,
        dst_ip: Ipv4Addr,
        dst_port: u16,
    ) -> (ConnId, Packet) {
        let src_port = self.next_ephemeral;
        self.next_ephemeral = self.next_ephemeral.wrapping_add(1).max(32768);
        let id = self.alloc_conn();
        let key = FlowKey {
            src_ip: dst_ip,
            dst_ip: self.ip,
            src_port: dst_port,
            dst_port: src_port,
        };
        let conn = TcpConn {
            id,
            local_port: src_port,
            remote_ip: dst_ip,
            remote_port: dst_port,
            remote_mac: dst_mac,
            state: TcpState::SynSent,
            next_seq: 1,
            last_ack: 0,
        };
        self.conns.insert(key, conn);
        self.conn_index.insert(id, key);
        let syn = Packet::tcp(
            self.mac, dst_mac, self.ip, dst_ip, src_port, dst_port, 0, 0,
            TcpFlags::SYN,
            Vec::new(),
        );
        (id, syn)
    }

    /// Sends data on an established connection; `None` if the connection is
    /// unknown or closed.
    pub fn tcp_send(&mut self, conn: ConnId, data: Vec<u8>) -> Option<Packet> {
        let key = *self.conn_index.get(&conn)?;
        let c = self.conns.get_mut(&key)?;
        if c.state != TcpState::Established {
            return None;
        }
        let seq = c.next_seq;
        c.next_seq = c.next_seq.wrapping_add(data.len() as u32);
        Some(Packet::tcp(
            self.mac,
            c.remote_mac,
            self.ip,
            c.remote_ip,
            c.local_port,
            c.remote_port,
            seq,
            c.last_ack,
            TcpFlags::ACK,
            data,
        ))
    }

    /// Closes a connection; returns the FIN to transmit if it was open.
    pub fn tcp_close(&mut self, conn: ConnId) -> Option<Packet> {
        let key = *self.conn_index.get(&conn)?;
        let c = self.conns.get_mut(&key)?;
        if c.state == TcpState::Closed {
            return None;
        }
        c.state = TcpState::Closed;
        let fin = Packet::tcp(
            self.mac,
            c.remote_mac,
            self.ip,
            c.remote_ip,
            c.local_port,
            c.remote_port,
            c.next_seq,
            c.last_ack,
            TcpFlags::FIN_ACK,
            Vec::new(),
        );
        self.conns.remove(&key);
        self.conn_index.remove(&conn);
        Some(fin)
    }

    /// Feeds an incoming packet; returns any reply packets the stack
    /// generates autonomously (SYN-ACK, FIN-ACK). Application events are
    /// queued and retrieved with [`NetStack::poll_events`].
    pub fn handle_packet(&mut self, pkt: &Packet) -> Vec<Packet> {
        if pkt.dst_ip != self.ip {
            return Vec::new();
        }
        match &pkt.l4 {
            L4::Udp {
                src_port,
                dst_port,
                payload,
            } => {
                if self.udp_bound.contains_key(dst_port) {
                    self.pending.push_back(SockEvent::UdpData {
                        port: *dst_port,
                        src_ip: pkt.src_ip,
                        src_port: *src_port,
                        payload: payload.clone(),
                    });
                }
                Vec::new()
            }
            L4::Tcp {
                src_port,
                dst_port,
                seq,
                ack: _,
                flags,
                payload,
            } => self.handle_tcp(pkt, *src_port, *dst_port, *seq, *flags, payload),
        }
    }

    fn handle_tcp(
        &mut self,
        pkt: &Packet,
        src_port: u16,
        dst_port: u16,
        seq: u32,
        flags: TcpFlags,
        payload: &[u8],
    ) -> Vec<Packet> {
        let key = pkt.flow();
        let mut replies = Vec::new();

        if flags.syn && !flags.ack {
            // Inbound connection request.
            if self.tcp_listeners.contains_key(&dst_port) {
                let id = self.alloc_conn();
                let conn = TcpConn {
                    id,
                    local_port: dst_port,
                    remote_ip: pkt.src_ip,
                    remote_port: src_port,
                    remote_mac: pkt.src_mac,
                    state: TcpState::Established,
                    next_seq: 1,
                    last_ack: seq.wrapping_add(1),
                };
                self.conns.insert(key, conn);
                self.conn_index.insert(id, key);
                self.pending.push_back(SockEvent::TcpAccepted { conn: id, port: dst_port });
                replies.push(Packet::tcp(
                    self.mac,
                    pkt.src_mac,
                    self.ip,
                    pkt.src_ip,
                    dst_port,
                    src_port,
                    0,
                    seq.wrapping_add(1),
                    TcpFlags::SYN_ACK,
                    Vec::new(),
                ));
            }
            return replies;
        }

        if flags.syn && flags.ack {
            // Handshake completion for an outbound connection.
            if let Some(c) = self.conns.get_mut(&key) {
                if c.state == TcpState::SynSent {
                    c.state = TcpState::Established;
                    c.last_ack = seq.wrapping_add(1);
                    self.pending.push_back(SockEvent::TcpConnected { conn: c.id });
                }
            }
            return replies;
        }

        let Some(c) = self.conns.get_mut(&key) else {
            return replies;
        };

        if !payload.is_empty() {
            c.last_ack = seq.wrapping_add(payload.len() as u32);
            let id = c.id;
            self.pending.push_back(SockEvent::TcpData {
                conn: id,
                data: payload.to_vec(),
            });
        }

        if flags.fin || flags.rst {
            let id = c.id;
            c.state = TcpState::Closed;
            self.conns.remove(&key);
            self.conn_index.remove(&id);
            self.pending.push_back(SockEvent::TcpClosed { conn: id });
        }
        replies
    }

    /// Retrieves all queued application events.
    pub fn poll_events(&mut self) -> Vec<SockEvent> {
        self.pending.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (NetStack, NetStack) {
        let server = NetStack::new(MacAddr::xen(1, 0), Ipv4Addr::new(10, 0, 0, 1));
        let client = NetStack::new(MacAddr::xen(2, 0), Ipv4Addr::new(10, 0, 0, 2));
        (server, client)
    }

    /// Ferries packets between two stacks until quiescence.
    fn pump(a: &mut NetStack, b: &mut NetStack, mut from_a: Vec<Packet>, mut from_b: Vec<Packet>) {
        while !from_a.is_empty() || !from_b.is_empty() {
            let mut next_a = Vec::new();
            let mut next_b = Vec::new();
            for p in from_a.drain(..) {
                next_b.extend(b.handle_packet(&p));
            }
            for p in from_b.drain(..) {
                next_a.extend(a.handle_packet(&p));
            }
            from_a = next_a
                .into_iter()
                .collect();
            // Replies generated by `a` flow to `b` next round.
            std::mem::swap(&mut from_a, &mut from_b);
            std::mem::swap(&mut from_b, &mut next_b);
            from_a.extend(next_b);
        }
    }

    #[test]
    fn udp_delivery_to_bound_port() {
        let (mut server, client) = pair();
        server.udp_bind(7);
        let p = client.udp_send(server.mac(), server.ip(), 5000, 7, b"ping".to_vec());
        server.handle_packet(&p);
        let evts = server.poll_events();
        assert_eq!(evts.len(), 1);
        assert!(matches!(
            &evts[0],
            SockEvent::UdpData { port: 7, payload, .. } if payload == b"ping"
        ));
    }

    #[test]
    fn udp_unbound_port_dropped() {
        let (mut server, client) = pair();
        let p = client.udp_send(server.mac(), server.ip(), 5000, 99, b"x".to_vec());
        server.handle_packet(&p);
        assert!(server.poll_events().is_empty());
    }

    #[test]
    fn wrong_destination_ignored() {
        let (mut server, client) = pair();
        server.udp_bind(7);
        let p = client.udp_send(server.mac(), Ipv4Addr::new(9, 9, 9, 9), 1, 7, vec![]);
        assert!(server.handle_packet(&p).is_empty());
        assert!(server.poll_events().is_empty());
    }

    #[test]
    fn tcp_handshake_data_close() {
        let (mut server, mut client) = pair();
        server.tcp_listen(80);
        let (cid, syn) = client.tcp_connect(server.mac(), server.ip(), 80);

        let synack = server.handle_packet(&syn);
        assert_eq!(synack.len(), 1);
        let evts = server.poll_events();
        let sid = match &evts[0] {
            SockEvent::TcpAccepted { conn, port: 80 } => *conn,
            other => panic!("expected accept, got {other:?}"),
        };

        client.handle_packet(&synack[0]);
        assert!(matches!(
            client.poll_events().as_slice(),
            [SockEvent::TcpConnected { conn }] if *conn == cid
        ));

        // Client sends a request, server replies.
        let req = client.tcp_send(cid, b"GET /".to_vec()).unwrap();
        server.handle_packet(&req);
        assert!(matches!(
            server.poll_events().as_slice(),
            [SockEvent::TcpData { data, .. }] if data == b"GET /"
        ));
        let resp = server.tcp_send(sid, b"200 OK".to_vec()).unwrap();
        client.handle_packet(&resp);
        assert!(matches!(
            client.poll_events().as_slice(),
            [SockEvent::TcpData { data, .. }] if data == b"200 OK"
        ));

        // Client closes; server sees it.
        let fin = client.tcp_close(cid).unwrap();
        server.handle_packet(&fin);
        assert!(matches!(
            server.poll_events().as_slice(),
            [SockEvent::TcpClosed { conn }] if *conn == sid
        ));
        assert_eq!(server.established_count(), 0);
        assert_eq!(client.established_count(), 0);
    }

    #[test]
    fn syn_to_closed_port_ignored() {
        let (mut server, mut client) = pair();
        let (_, syn) = client.tcp_connect(server.mac(), server.ip(), 81);
        assert!(server.handle_packet(&syn).is_empty());
    }

    #[test]
    fn many_concurrent_connections() {
        let (mut server, mut client) = pair();
        server.tcp_listen(80);
        let mut ids = Vec::new();
        for _ in 0..100 {
            let (cid, syn) = client.tcp_connect(server.mac(), server.ip(), 80);
            for r in server.handle_packet(&syn) {
                client.handle_packet(&r);
            }
            ids.push(cid);
        }
        assert_eq!(server.established_count(), 100);
        assert_eq!(client.established_count(), 100);
        // Each connection can carry data independently.
        let p = client.tcp_send(ids[42], b"hello".to_vec()).unwrap();
        server.handle_packet(&p);
        assert_eq!(server.poll_events().len(), 100 + 1); // 100 accepts + 1 data
    }

    #[test]
    fn send_on_closed_conn_is_none() {
        let (mut server, mut client) = pair();
        server.tcp_listen(80);
        let (cid, syn) = client.tcp_connect(server.mac(), server.ip(), 80);
        for r in server.handle_packet(&syn) {
            client.handle_packet(&r);
        }
        client.tcp_close(cid);
        assert!(client.tcp_send(cid, vec![1]).is_none());
        assert!(client.tcp_close(cid).is_none());
    }

    #[test]
    fn pump_helper_converges() {
        let (mut server, mut client) = pair();
        server.tcp_listen(80);
        let (_cid, syn) = client.tcp_connect(server.mac(), server.ip(), 80);
        pump(&mut server, &mut client, Vec::new(), vec![syn]);
        assert_eq!(server.established_count(), 1);
    }
}

//! Host-side network multiplexing for cloned unikernels.
//!
//! Clone network devices keep the *same MAC and IP address* as the parent
//! (transparent cloning, §5.2.1). The host therefore needs a stateless or
//! state-aware mechanism to pick which clone interface receives each flow.
//! The paper evaluates two off-the-shelf solutions, both implemented here:
//!
//! * [`bond::Bond`] — a Linux bonding interface in `balance-xor` mode with
//!   the `layer3+4` transmit hash policy: the slave is chosen by hashing IP
//!   addresses and ports, keeping no per-flow state;
//! * [`ovs::SelectGroup`] — an Open vSwitch select group, hash-based by
//!   default but extensible with flow-aware selection strategies.
//!
//! [`bridge::Bridge`] provides the plain learning switch used for regular
//! (non-cloned) guests.

pub mod bond;
pub mod bridge;
pub mod ovs;
pub mod packet;
pub mod stack;

pub use bond::{Bond, XmitHashPolicy};
pub use bridge::Bridge;
pub use ovs::{FlowAwareSelect, HashSelect, SelectGroup, SelectionStrategy};
pub use packet::{FlowKey, L4, MacAddr, Packet, TcpFlags};
pub use stack::{ConnId, NetStack, SockEvent};

/// Identifies a virtual interface attached to a mux (e.g. a vif).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IfaceId(pub u32);

/// A clone-interface multiplexer: given a packet destined to the shared
/// MAC/IP, pick the member interface that should receive it.
pub trait CloneMux {
    /// Adds a member interface (e.g. when `xencloned` enslaves a new clone
    /// vif).
    fn add_member(&mut self, iface: IfaceId);
    /// Removes a member interface (clone destroyed).
    fn remove_member(&mut self, iface: IfaceId);
    /// Selects the member for `pkt`, or `None` when the mux is empty.
    fn select(&mut self, pkt: &Packet) -> Option<IfaceId>;
    /// Current member count.
    fn member_count(&self) -> usize;
}

//! Linux bonding in `balance-xor` mode.
//!
//! The paper's stateless solution for clone networking (§5.2.1, §6.1): all
//! clone vifs share one MAC/IP and are enslaved to a bond whose
//! `layer3+4` transmit hash picks the slave from the IP/port 4-tuple. The
//! bond keeps no per-flow state; its only overhead is computing the hash.
//!
//! The hash mirrors the kernel's `bond_xmit_hash` for `layer3+4`: XOR of
//! source/destination IPs folded with the XOR of the ports, reduced modulo
//! the slave count. As in the paper's experiment, distinct `<address,
//! port>` tuples may collide on the same slave — the evaluation works
//! around this by assigning each UDP server a unique port.

use crate::packet::Packet;
use crate::{CloneMux, IfaceId};

/// Transmit hash policy (a subset of the Linux bonding options).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XmitHashPolicy {
    /// Hash on source/destination MAC (layer2).
    Layer2,
    /// Hash on IP addresses and ports (layer3+4) — the paper's choice.
    Layer34,
}

/// A bond interface aggregating clone vifs.
#[derive(Debug)]
pub struct Bond {
    slaves: Vec<IfaceId>,
    policy: XmitHashPolicy,
}

impl Bond {
    /// Creates an empty bond with the given transmit hash policy.
    pub fn new(policy: XmitHashPolicy) -> Self {
        Bond {
            slaves: Vec::new(),
            policy,
        }
    }

    /// The slave index a packet hashes to (exposed for tests and for the
    /// collision-avoidance logic in the experiments).
    pub fn hash_index(&self, pkt: &Packet, n: usize) -> usize {
        debug_assert!(n > 0);
        let h = match self.policy {
            XmitHashPolicy::Layer2 => {
                let s = pkt.src_mac.0;
                let d = pkt.dst_mac.0;
                (s[5] ^ d[5]) as u64
            }
            XmitHashPolicy::Layer34 => {
                let sip = u32::from(pkt.src_ip) as u64;
                let dip = u32::from(pkt.dst_ip) as u64;
                let ports = (pkt.src_port() ^ pkt.dst_port()) as u64;
                // Fold IPs and ports the way bond_xmit_hash does.
                let mut h = sip ^ dip;
                h ^= h >> 16;
                h ^= ports;
                h
            }
        };
        (h % n as u64) as usize
    }

    /// The configured policy.
    pub fn policy(&self) -> XmitHashPolicy {
        self.policy
    }

    /// Current slaves, in enslavement order.
    pub fn slaves(&self) -> &[IfaceId] {
        &self.slaves
    }
}

impl CloneMux for Bond {
    fn add_member(&mut self, iface: IfaceId) {
        if !self.slaves.contains(&iface) {
            self.slaves.push(iface);
        }
    }

    fn remove_member(&mut self, iface: IfaceId) {
        self.slaves.retain(|s| *s != iface);
    }

    fn select(&mut self, pkt: &Packet) -> Option<IfaceId> {
        if self.slaves.is_empty() {
            return None;
        }
        let idx = self.hash_index(pkt, self.slaves.len());
        Some(self.slaves[idx])
    }

    fn member_count(&self) -> usize {
        self.slaves.len()
    }
}

#[cfg(test)]
mod tests {
    use std::net::Ipv4Addr;

    use crate::packet::MacAddr;

    use super::*;

    fn pkt(src_port: u16) -> Packet {
        Packet::udp(
            MacAddr::xen(0, 0),
            MacAddr::xen(1, 0),
            Ipv4Addr::new(10, 0, 0, 100),
            Ipv4Addr::new(10, 0, 0, 1),
            src_port,
            7,
            vec![],
        )
    }

    fn bond_with(n: u32) -> Bond {
        let mut b = Bond::new(XmitHashPolicy::Layer34);
        for i in 0..n {
            b.add_member(IfaceId(i));
        }
        b
    }

    #[test]
    fn empty_bond_selects_nothing() {
        let mut b = Bond::new(XmitHashPolicy::Layer34);
        assert_eq!(b.select(&pkt(1)), None);
    }

    #[test]
    fn selection_is_deterministic_per_flow() {
        let mut b = bond_with(8);
        let a = b.select(&pkt(1234)).unwrap();
        for _ in 0..10 {
            assert_eq!(b.select(&pkt(1234)).unwrap(), a, "same flow, same slave");
        }
    }

    #[test]
    fn ports_spread_across_slaves() {
        let mut b = bond_with(8);
        let mut seen = std::collections::HashSet::new();
        for port in 0..64 {
            seen.insert(b.select(&pkt(port)).unwrap());
        }
        assert_eq!(seen.len(), 8, "64 ports must cover all 8 slaves");
    }

    #[test]
    fn distribution_is_roughly_balanced() {
        let mut b = bond_with(4);
        let mut counts = [0u32; 4];
        for port in 1000..3000 {
            let IfaceId(i) = b.select(&pkt(port)).unwrap();
            counts[i as usize] += 1;
        }
        for c in counts {
            assert!((400..600).contains(&c), "counts {counts:?} unbalanced");
        }
    }

    #[test]
    fn unique_ports_can_map_distinct_slaves() {
        // The paper assigns each clone's UDP server a unique port so no two
        // <address, port> tuples collide; verify such an assignment exists.
        let mut b = bond_with(4);
        let mut covered = std::collections::HashSet::new();
        let mut port = 9000;
        while covered.len() < 4 {
            if covered.insert(b.select(&pkt(port)).unwrap()) {
                // New slave covered by this port.
            }
            port += 1;
            assert!(port < 9100, "should cover 4 slaves within 100 ports");
        }
    }

    #[test]
    fn enslave_remove_roundtrip() {
        let mut b = bond_with(2);
        b.add_member(IfaceId(0));
        assert_eq!(b.member_count(), 2, "duplicate enslave ignored");
        b.remove_member(IfaceId(0));
        assert_eq!(b.member_count(), 1);
        assert_eq!(b.select(&pkt(5)).unwrap(), IfaceId(1));
    }

    #[test]
    fn layer2_policy_hashes_macs() {
        let mut b = Bond::new(XmitHashPolicy::Layer2);
        b.add_member(IfaceId(0));
        b.add_member(IfaceId(1));
        let p = pkt(1);
        let first = b.select(&p).unwrap();
        assert_eq!(b.select(&p).unwrap(), first);
    }
}

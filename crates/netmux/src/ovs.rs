//! Open vSwitch select groups.
//!
//! The paper's second multiplexing option (§5.2.1): an OVS group of type
//! `select` whose buckets are the clone vifs. Vanilla OVS picks buckets by
//! hashing, but the point of the OVS path is extensibility — selection can
//! use the per-flow state OVS keeps. Both are provided:
//!
//! * [`HashSelect`] — stateless 4-tuple hashing (vanilla behaviour);
//! * [`FlowAwareSelect`] — sticky flow pinning with least-connections
//!   assignment for new flows, an example of the "more complex selection
//!   criteria" the paper says the approach enables.

use std::collections::HashMap;

use crate::packet::{FlowKey, Packet};
use crate::{CloneMux, IfaceId};

/// Strategy for picking a bucket from a select group.
pub trait SelectionStrategy: std::fmt::Debug {
    /// Chooses a bucket index in `[0, n)` for `pkt`.
    fn select(&mut self, pkt: &Packet, n: usize) -> usize;
    /// Informs the strategy that a bucket was removed so any retained flow
    /// state can be fixed up.
    fn bucket_removed(&mut self, idx: usize);
}

/// Stateless hash selection over the flow 4-tuple.
#[derive(Debug, Default)]
pub struct HashSelect;

impl SelectionStrategy for HashSelect {
    fn select(&mut self, pkt: &Packet, n: usize) -> usize {
        let f = pkt.flow();
        let mut h = ((u32::from(f.src_ip) as u64) << 32) | u32::from(f.dst_ip) as u64;
        h ^= ((f.src_port as u64) << 16) | f.dst_port as u64;
        // SplitMix64 finalizer for good avalanche on low-entropy tuples.
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
        (h % n as u64) as usize
    }

    fn bucket_removed(&mut self, _idx: usize) {}
}

/// Flow-aware selection: remembers each flow's bucket; new flows go to the
/// bucket with the fewest active flows.
#[derive(Debug, Default)]
pub struct FlowAwareSelect {
    flows: HashMap<FlowKey, usize>,
    loads: Vec<u64>,
}

impl SelectionStrategy for FlowAwareSelect {
    fn select(&mut self, pkt: &Packet, n: usize) -> usize {
        self.loads.resize(n, 0);
        let key = pkt.flow();
        if let Some(&idx) = self.flows.get(&key) {
            if idx < n {
                return idx;
            }
        }
        let idx = self
            .loads
            .iter()
            .take(n)
            .enumerate()
            .min_by_key(|(i, l)| (**l, *i))
            .map(|(i, _)| i)
            .unwrap_or(0);
        self.flows.insert(key, idx);
        self.loads[idx] += 1;
        idx
    }

    fn bucket_removed(&mut self, idx: usize) {
        self.flows.retain(|_, v| {
            if *v == idx {
                return false;
            }
            if *v > idx {
                *v -= 1;
            }
            true
        });
        if idx < self.loads.len() {
            self.loads.remove(idx);
        }
    }
}

/// An OVS select group whose buckets are clone interfaces.
#[derive(Debug)]
pub struct SelectGroup<S: SelectionStrategy> {
    buckets: Vec<IfaceId>,
    strategy: S,
}

impl<S: SelectionStrategy> SelectGroup<S> {
    /// Creates an empty group with the given strategy.
    pub fn new(strategy: S) -> Self {
        SelectGroup {
            buckets: Vec::new(),
            strategy,
        }
    }

    /// The bucket list in insertion order.
    pub fn buckets(&self) -> &[IfaceId] {
        &self.buckets
    }
}

impl SelectGroup<HashSelect> {
    /// A vanilla hash-selected group.
    pub fn hashed() -> Self {
        SelectGroup::new(HashSelect)
    }
}

impl SelectGroup<FlowAwareSelect> {
    /// A flow-aware (sticky, least-connections) group.
    pub fn flow_aware() -> Self {
        SelectGroup::new(FlowAwareSelect::default())
    }
}

impl<S: SelectionStrategy> CloneMux for SelectGroup<S> {
    fn add_member(&mut self, iface: IfaceId) {
        if !self.buckets.contains(&iface) {
            self.buckets.push(iface);
        }
    }

    fn remove_member(&mut self, iface: IfaceId) {
        if let Some(idx) = self.buckets.iter().position(|b| *b == iface) {
            self.buckets.remove(idx);
            self.strategy.bucket_removed(idx);
        }
    }

    fn select(&mut self, pkt: &Packet) -> Option<IfaceId> {
        if self.buckets.is_empty() {
            return None;
        }
        let idx = self.strategy.select(pkt, self.buckets.len());
        Some(self.buckets[idx])
    }

    fn member_count(&self) -> usize {
        self.buckets.len()
    }
}

#[cfg(test)]
mod tests {
    use std::net::Ipv4Addr;

    use crate::packet::MacAddr;

    use super::*;

    fn pkt(src_port: u16) -> Packet {
        Packet::udp(
            MacAddr::xen(0, 0),
            MacAddr::xen(1, 0),
            Ipv4Addr::new(10, 0, 0, 100),
            Ipv4Addr::new(10, 0, 0, 1),
            src_port,
            80,
            vec![],
        )
    }

    #[test]
    fn hashed_group_is_deterministic() {
        let mut g = SelectGroup::hashed();
        for i in 0..4 {
            g.add_member(IfaceId(i));
        }
        let a = g.select(&pkt(55)).unwrap();
        assert_eq!(g.select(&pkt(55)).unwrap(), a);
    }

    #[test]
    fn hashed_group_spreads_ports() {
        let mut g = SelectGroup::hashed();
        for i in 0..4 {
            g.add_member(IfaceId(i));
        }
        let mut seen = std::collections::HashSet::new();
        for p in 0..64 {
            seen.insert(g.select(&pkt(p)).unwrap());
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn flow_aware_balances_new_flows() {
        let mut g = SelectGroup::flow_aware();
        for i in 0..3 {
            g.add_member(IfaceId(i));
        }
        // Nine distinct flows: exactly three per bucket.
        let mut counts = std::collections::HashMap::new();
        for p in 0..9 {
            *counts.entry(g.select(&pkt(p)).unwrap()).or_insert(0) += 1;
        }
        assert!(counts.values().all(|&c| c == 3), "{counts:?}");
    }

    #[test]
    fn flow_aware_is_sticky() {
        let mut g = SelectGroup::flow_aware();
        g.add_member(IfaceId(0));
        g.add_member(IfaceId(1));
        let first = g.select(&pkt(7)).unwrap();
        // Interleave other flows; flow 7 must stay pinned.
        for p in 100..110 {
            g.select(&pkt(p)).unwrap();
        }
        assert_eq!(g.select(&pkt(7)).unwrap(), first);
    }

    #[test]
    fn removal_reroutes_orphaned_flows() {
        let mut g = SelectGroup::flow_aware();
        g.add_member(IfaceId(0));
        g.add_member(IfaceId(1));
        let victim = g.select(&pkt(7)).unwrap();
        g.remove_member(victim);
        let next = g.select(&pkt(7)).unwrap();
        assert_ne!(next, victim);
        assert_eq!(g.member_count(), 1);
    }

    #[test]
    fn empty_group_selects_nothing() {
        let mut g = SelectGroup::hashed();
        assert_eq!(g.select(&pkt(1)), None);
    }
}

//! A learning L2 bridge (the software switch Dom0 uses to multiplex the
//! physical NIC between vifs).

use std::collections::HashMap;

use crate::packet::{MacAddr, Packet};
use crate::IfaceId;

/// A learning switch.
#[derive(Debug, Default)]
pub struct Bridge {
    ports: Vec<IfaceId>,
    mac_table: HashMap<MacAddr, IfaceId>,
}

impl Bridge {
    /// Creates an empty bridge.
    pub fn new() -> Self {
        Bridge::default()
    }

    /// Attaches an interface to the bridge.
    pub fn add_port(&mut self, iface: IfaceId) {
        if !self.ports.contains(&iface) {
            self.ports.push(iface);
        }
    }

    /// Detaches an interface, flushing its learned MACs.
    pub fn remove_port(&mut self, iface: IfaceId) {
        self.ports.retain(|p| *p != iface);
        self.mac_table.retain(|_, p| *p != iface);
    }

    /// Number of attached ports.
    pub fn port_count(&self) -> usize {
        self.ports.len()
    }

    /// Switches a packet arriving on `in_port`: learns the source MAC and
    /// returns the output ports (one for a known unicast destination; all
    /// other ports for unknown/broadcast).
    pub fn forward(&mut self, pkt: &Packet, in_port: IfaceId) -> Vec<IfaceId> {
        self.mac_table.insert(pkt.src_mac, in_port);
        if !pkt.dst_mac.is_broadcast() {
            if let Some(out) = self.mac_table.get(&pkt.dst_mac) {
                if *out == in_port {
                    return Vec::new();
                }
                return vec![*out];
            }
        }
        self.ports.iter().copied().filter(|p| *p != in_port).collect()
    }

    /// Looks up the learned port for a MAC.
    pub fn lookup(&self, mac: MacAddr) -> Option<IfaceId> {
        self.mac_table.get(&mac).copied()
    }
}

#[cfg(test)]
mod tests {
    use std::net::Ipv4Addr;

    use super::*;

    fn pkt(src: MacAddr, dst: MacAddr) -> Packet {
        Packet::udp(
            src,
            dst,
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            1,
            2,
            vec![],
        )
    }

    #[test]
    fn floods_unknown_then_learns() {
        let mut b = Bridge::new();
        let (p1, p2, p3) = (IfaceId(1), IfaceId(2), IfaceId(3));
        b.add_port(p1);
        b.add_port(p2);
        b.add_port(p3);
        let a = MacAddr::xen(1, 0);
        let c = MacAddr::xen(2, 0);

        // Unknown destination: flood everywhere but the ingress.
        let out = b.forward(&pkt(a, c), p1);
        assert_eq!(out, vec![p2, p3]);

        // Reply teaches the bridge where `c` lives; now unicast.
        b.forward(&pkt(c, a), p2);
        let out = b.forward(&pkt(a, c), p1);
        assert_eq!(out, vec![p2]);
    }

    #[test]
    fn hairpin_suppressed() {
        let mut b = Bridge::new();
        b.add_port(IfaceId(1));
        let a = MacAddr::xen(1, 0);
        b.forward(&pkt(a, MacAddr::BROADCAST), IfaceId(1));
        // Destination learned on the same port it arrives from: drop.
        let out = b.forward(&pkt(MacAddr::xen(9, 9), a), IfaceId(1));
        assert!(out.is_empty());
    }

    #[test]
    fn remove_port_flushes_macs() {
        let mut b = Bridge::new();
        b.add_port(IfaceId(1));
        b.add_port(IfaceId(2));
        let a = MacAddr::xen(1, 0);
        b.forward(&pkt(a, MacAddr::BROADCAST), IfaceId(1));
        assert_eq!(b.lookup(a), Some(IfaceId(1)));
        b.remove_port(IfaceId(1));
        assert_eq!(b.lookup(a), None);
        assert_eq!(b.port_count(), 1);
    }

    #[test]
    fn duplicate_add_is_idempotent() {
        let mut b = Bridge::new();
        b.add_port(IfaceId(1));
        b.add_port(IfaceId(1));
        assert_eq!(b.port_count(), 1);
    }
}

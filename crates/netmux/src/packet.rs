//! A minimal Ethernet/IPv4/L4 packet model.
//!
//! Only what the simulated data path needs: addressing for switching and
//! hashing, ports and payload for the guest network stacks. No
//! checksums or wire encoding — packets move between components as values.

use std::fmt;
use std::net::Ipv4Addr;

/// A 48-bit MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address.
    pub const BROADCAST: MacAddr = MacAddr([0xFF; 6]);

    /// Returns the Xen-style locally administered MAC for a domain/device
    /// pair (`00:16:3e` is the Xen OUI).
    pub fn xen(domid: u32, dev: u8) -> MacAddr {
        let d = domid.to_be_bytes();
        MacAddr([0x00, 0x16, 0x3e, d[2], d[3], dev])
    }

    /// Whether this is the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

/// TCP control flags (only what the mini TCP state machine uses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpFlags {
    /// Connection open request.
    pub syn: bool,
    /// Acknowledgement.
    pub ack: bool,
    /// Orderly close.
    pub fin: bool,
    /// Abort.
    pub rst: bool,
}

impl TcpFlags {
    /// A bare SYN.
    pub const SYN: TcpFlags = TcpFlags { syn: true, ack: false, fin: false, rst: false };
    /// SYN+ACK.
    pub const SYN_ACK: TcpFlags = TcpFlags { syn: true, ack: true, fin: false, rst: false };
    /// A bare ACK.
    pub const ACK: TcpFlags = TcpFlags { syn: false, ack: true, fin: false, rst: false };
    /// FIN+ACK.
    pub const FIN_ACK: TcpFlags = TcpFlags { syn: false, ack: true, fin: true, rst: false };
}

/// Transport-layer content.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum L4 {
    /// A UDP datagram.
    Udp {
        /// Source port.
        src_port: u16,
        /// Destination port.
        dst_port: u16,
        /// Payload bytes.
        payload: Vec<u8>,
    },
    /// A TCP segment.
    Tcp {
        /// Source port.
        src_port: u16,
        /// Destination port.
        dst_port: u16,
        /// Sequence number.
        seq: u32,
        /// Acknowledgement number.
        ack: u32,
        /// Control flags.
        flags: TcpFlags,
        /// Payload bytes.
        payload: Vec<u8>,
    },
}

/// The 4-tuple used by layer3+4 hashing and flow tracking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowKey {
    /// Source IP.
    pub src_ip: Ipv4Addr,
    /// Destination IP.
    pub dst_ip: Ipv4Addr,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
}

/// An Ethernet/IPv4 packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Source MAC.
    pub src_mac: MacAddr,
    /// Destination MAC.
    pub dst_mac: MacAddr,
    /// Source IPv4 address.
    pub src_ip: Ipv4Addr,
    /// Destination IPv4 address.
    pub dst_ip: Ipv4Addr,
    /// Transport content.
    pub l4: L4,
}

impl Packet {
    /// Builds a UDP packet.
    #[allow(clippy::too_many_arguments)]
    pub fn udp(
        src_mac: MacAddr,
        dst_mac: MacAddr,
        src_ip: Ipv4Addr,
        dst_ip: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
        payload: Vec<u8>,
    ) -> Packet {
        Packet {
            src_mac,
            dst_mac,
            src_ip,
            dst_ip,
            l4: L4::Udp {
                src_port,
                dst_port,
                payload,
            },
        }
    }

    /// Builds a TCP packet.
    #[allow(clippy::too_many_arguments)]
    pub fn tcp(
        src_mac: MacAddr,
        dst_mac: MacAddr,
        src_ip: Ipv4Addr,
        dst_ip: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
        seq: u32,
        ack: u32,
        flags: TcpFlags,
        payload: Vec<u8>,
    ) -> Packet {
        Packet {
            src_mac,
            dst_mac,
            src_ip,
            dst_ip,
            l4: L4::Tcp {
                src_port,
                dst_port,
                seq,
                ack,
                flags,
                payload,
            },
        }
    }

    /// Source port, whatever the transport.
    pub fn src_port(&self) -> u16 {
        match &self.l4 {
            L4::Udp { src_port, .. } | L4::Tcp { src_port, .. } => *src_port,
        }
    }

    /// Destination port, whatever the transport.
    pub fn dst_port(&self) -> u16 {
        match &self.l4 {
            L4::Udp { dst_port, .. } | L4::Tcp { dst_port, .. } => *dst_port,
        }
    }

    /// Payload bytes.
    pub fn payload(&self) -> &[u8] {
        match &self.l4 {
            L4::Udp { payload, .. } | L4::Tcp { payload, .. } => payload,
        }
    }

    /// Total modelled length in bytes (headers + payload).
    pub fn len(&self) -> usize {
        let hdr = match &self.l4 {
            L4::Udp { .. } => 14 + 20 + 8,
            L4::Tcp { .. } => 14 + 20 + 20,
        };
        hdr + self.payload().len()
    }

    /// Whether the packet carries no payload.
    pub fn is_empty(&self) -> bool {
        self.payload().is_empty()
    }

    /// The flow 4-tuple.
    pub fn flow(&self) -> FlowKey {
        FlowKey {
            src_ip: self.src_ip,
            dst_ip: self.dst_ip,
            src_port: self.src_port(),
            dst_port: self.dst_port(),
        }
    }

    /// The reply direction of this packet's flow.
    pub fn reverse_flow(&self) -> FlowKey {
        FlowKey {
            src_ip: self.dst_ip,
            dst_ip: self.src_ip,
            src_port: self.dst_port(),
            dst_port: self.src_port(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Packet {
        Packet::udp(
            MacAddr::xen(1, 0),
            MacAddr::xen(2, 0),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            4000,
            53,
            vec![1, 2, 3],
        )
    }

    #[test]
    fn xen_mac_uses_oui_and_domid() {
        let m = MacAddr::xen(0x0102, 3);
        assert_eq!(m.0, [0x00, 0x16, 0x3e, 0x01, 0x02, 0x03]);
        assert_eq!(m.to_string(), "00:16:3e:01:02:03");
        assert!(!m.is_broadcast());
        assert!(MacAddr::BROADCAST.is_broadcast());
    }

    #[test]
    fn ports_and_payload_accessors() {
        let p = sample();
        assert_eq!(p.src_port(), 4000);
        assert_eq!(p.dst_port(), 53);
        assert_eq!(p.payload(), &[1, 2, 3]);
        assert_eq!(p.len(), 14 + 20 + 8 + 3);
        assert!(!p.is_empty());
    }

    #[test]
    fn flow_and_reverse() {
        let p = sample();
        let f = p.flow();
        let r = p.reverse_flow();
        assert_eq!(f.src_ip, r.dst_ip);
        assert_eq!(f.src_port, r.dst_port);
        assert_ne!(f, r);
    }

    #[test]
    fn tcp_flag_constants() {
        assert!(TcpFlags::SYN.syn && !TcpFlags::SYN.ack);
        assert!(TcpFlags::SYN_ACK.syn && TcpFlags::SYN_ACK.ack);
        assert!(TcpFlags::FIN_ACK.fin && TcpFlags::FIN_ACK.ack);
    }
}

//! Property tests for the clone-interface multiplexers and the bridge:
//! flow stickiness, membership correctness and balance bounds.

use std::net::Ipv4Addr;

use testkit::prop::{check, ranges, u16s, u32s, u64s, vecs};

use netmux::{
    Bond,
    Bridge,
    CloneMux,
    FlowAwareSelect,
    IfaceId,
    MacAddr,
    Packet,
    SelectGroup,
    XmitHashPolicy, //
};

fn pkt(src_ip: u32, src_port: u16, dst_port: u16) -> Packet {
    Packet::udp(
        MacAddr::xen(1, 0),
        MacAddr::xen(2, 0),
        Ipv4Addr::from(src_ip),
        Ipv4Addr::new(10, 0, 0, 1),
        src_port,
        dst_port,
        vec![],
    )
}

/// Bond selection is a pure function of the flow: any permutation of
/// queries returns consistent, member-set-contained results.
#[test]
fn bond_selection_is_consistent() {
    check(128, |g| {
        let members = g.draw(&ranges(1u32..32));
        let flows = g.draw(&vecs((u32s(), u16s(), u16s()), 1..64));

        let mut bond = Bond::new(XmitHashPolicy::Layer34);
        for i in 0..members {
            bond.add_member(IfaceId(i));
        }
        let mut first: Vec<IfaceId> = Vec::new();
        for (ip, sp, dp) in &flows {
            let sel = bond.select(&pkt(*ip, *sp, *dp)).unwrap();
            assert!(sel.0 < members, "selected non-member {sel:?}");
            first.push(sel);
        }
        // Re-query in reverse order: identical answers.
        for ((ip, sp, dp), expect) in flows.iter().zip(&first).rev() {
            assert_eq!(bond.select(&pkt(*ip, *sp, *dp)).unwrap(), *expect);
        }
    });
}

/// Removing a member never leaves it selectable, for both mux kinds.
#[test]
fn removed_members_are_never_selected() {
    check(128, |g| {
        let members = g.draw(&ranges(2u32..16));
        let victim = g.draw(&u32s());
        let flows = g.draw(&vecs((u32s(), u16s()), 1..64));

        let victim = IfaceId(victim % members);
        let mut bond = Bond::new(XmitHashPolicy::Layer34);
        let mut ovs: SelectGroup<FlowAwareSelect> = SelectGroup::flow_aware();
        for i in 0..members {
            bond.add_member(IfaceId(i));
            ovs.add_member(IfaceId(i));
        }
        // Touch some flows first so the flow-aware group holds state.
        for (ip, sp) in &flows {
            ovs.select(&pkt(*ip, *sp, 80)).unwrap();
        }
        bond.remove_member(victim);
        ovs.remove_member(victim);
        for (ip, sp) in &flows {
            assert_ne!(bond.select(&pkt(*ip, *sp, 80)).unwrap(), victim);
            assert_ne!(ovs.select(&pkt(*ip, *sp, 80)).unwrap(), victim);
        }
    });
}

/// With many uniformly random flows, no bond slave starves: each gets
/// at least a quarter of its fair share.
#[test]
fn bond_balance_bound() {
    check(128, |g| {
        let members = g.draw(&ranges(2u32..9));
        let seed = g.draw(&u64s());

        let mut bond = Bond::new(XmitHashPolicy::Layer34);
        for i in 0..members {
            bond.add_member(IfaceId(i));
        }
        let mut rng = sim_core::SplitMix64::new(seed);
        let mut counts = vec![0u32; members as usize];
        let n = 2000;
        for _ in 0..n {
            let p = pkt(rng.next_u64() as u32, rng.next_u64() as u16, 80);
            counts[bond.select(&p).unwrap().0 as usize] += 1;
        }
        let fair = n / members;
        for (i, c) in counts.iter().enumerate() {
            assert!(*c >= fair / 4, "slave {i} starved: {c} of fair {fair}");
        }
    });
}

/// The learning bridge never forwards a packet back out its ingress
/// port and never invents ports.
#[test]
fn bridge_never_hairpins() {
    check(128, |g| {
        let ports = g.draw(&ranges(2u32..12));
        let traffic = g.draw(&vecs((u32s(), u32s(), u32s()), 1..80));

        let mut bridge = Bridge::new();
        for i in 0..ports {
            bridge.add_port(IfaceId(i));
        }
        for (src, dst, ingress) in traffic {
            let ingress = IfaceId(ingress % ports);
            let p = Packet::udp(
                MacAddr::xen(src % 64, 0),
                MacAddr::xen(dst % 64, 0),
                Ipv4Addr::new(10, 0, 0, 1),
                Ipv4Addr::new(10, 0, 0, 2),
                1,
                2,
                vec![],
            );
            for out in bridge.forward(&p, ingress) {
                assert_ne!(out, ingress, "hairpin");
                assert!(out.0 < ports, "unknown port");
            }
        }
    });
}

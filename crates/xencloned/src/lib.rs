//! `xencloned`: the Nephele cloning daemon (second stage).
//!
//! `xencloned` runs in Dom0 and completes what the hypervisor's first stage
//! started (§4.2, §5). Woken by `VIRQ_CLONED`, it drains the clone
//! notification ring and, for each new child:
//!
//! 1. introduces the child to the Xenstore daemon (introduction augmented
//!    with the parent id);
//! 2. generates and writes the clone's name — uniqueness is guaranteed by
//!    construction, so the O(n) validation scan `xl` performs is skipped;
//! 3. clones each parent device's registry information, either with the
//!    `xs_clone` request (few round-trips) or with a deep per-entry copy
//!    (the Fig. 4 comparison), which triggers the backend drivers' own
//!    cloning operations;
//! 4. performs the userspace follow-ups for udev events (enslaving new
//!    vifs to the bond / adding them to the OVS group);
//! 5. signals completion back to the hypervisor via the `clone_completion`
//!    subcommand of `CLONEOP`, resuming the parent (and the children,
//!    policy permitting).
//!
//! The daemon caches parent Xenstore information after the first clone,
//! which is why the paper measures ~3 ms of userspace operations for the
//! first clone and ~1.9 ms afterwards (§6.2).

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::rc::Rc;

use devices::bus::{CloneCtx, ClonePolicy, DeviceClass};
use devices::udev::{UdevBus, UdevEvent};
use devices::{DevError, DeviceManager};
use hypervisor::cloneop::CloneOp;
use hypervisor::error::HvError;
use hypervisor::notify::CloneNotification;
use hypervisor::Hypervisor;
use netmux::{CloneMux, IfaceId};
use sim_core::{Clock, CostModel, DomId, TraceSink};
use toolstack::Xl;
use xenstore::{XsCloneOp, XsError, Xenstore};

/// Errors from the cloning daemon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CloneDaemonError {
    /// Hypervisor failure.
    Hv(HvError),
    /// Xenstore failure.
    Xs(XsError),
    /// Device failure.
    Dev(DevError),
}

impl fmt::Display for CloneDaemonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CloneDaemonError::Hv(e) => write!(f, "{e}"),
            CloneDaemonError::Xs(e) => write!(f, "{e}"),
            CloneDaemonError::Dev(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CloneDaemonError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CloneDaemonError::Hv(e) => Some(e),
            CloneDaemonError::Xs(e) => Some(e),
            CloneDaemonError::Dev(e) => Some(e),
        }
    }
}

impl From<HvError> for CloneDaemonError {
    fn from(e: HvError) -> Self {
        CloneDaemonError::Hv(e)
    }
}
impl From<XsError> for CloneDaemonError {
    fn from(e: XsError) -> Self {
        CloneDaemonError::Xs(e)
    }
}
impl From<DevError> for CloneDaemonError {
    fn from(e: DevError) -> Self {
        CloneDaemonError::Dev(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, CloneDaemonError>;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct XenclonedConfig {
    /// Use the `xs_clone` request (`false` falls back to the deep per-entry
    /// copy measured by the "clone + XS deep copy" curve of Fig. 4).
    pub use_xs_clone: bool,
    /// Per-device-class clone policy (the Redis experiment of §7.1
    /// disables the network class: "the I/O cloning is optimized to clone
    /// only the devices that are needed by the clones").
    pub policy: ClonePolicy,
    /// Clone console devices.
    #[deprecated(since = "0.3.0", note = "set `policy` (ClonePolicy) instead")]
    pub clone_console: bool,
    /// Clone network devices.
    #[deprecated(since = "0.3.0", note = "set `policy` (ClonePolicy) instead")]
    pub clone_network: bool,
    /// Clone 9pfs devices.
    #[deprecated(since = "0.3.0", note = "set `policy` (ClonePolicy) instead")]
    pub clone_9pfs: bool,
    /// Restrict the second stage to the mandatory operations only
    /// (toolstack introduction and naming) — the configuration used for
    /// the memory-scaling experiment of §6.2 / Fig. 6.
    pub minimal: bool,
}

impl Default for XenclonedConfig {
    #[allow(deprecated)]
    fn default() -> Self {
        XenclonedConfig {
            use_xs_clone: true,
            policy: ClonePolicy::all(),
            clone_console: true,
            clone_network: true,
            clone_9pfs: true,
            minimal: false,
        }
    }
}

impl XenclonedConfig {
    /// Whether the second stage clones devices of `class`: the typed
    /// [`ClonePolicy`] merged with the deprecated per-class booleans (a
    /// class is cloned only if neither disables it).
    #[allow(deprecated)]
    pub fn device_enabled(&self, class: DeviceClass) -> bool {
        let legacy = match class {
            DeviceClass::Console => self.clone_console,
            DeviceClass::Vif => self.clone_network,
            DeviceClass::P9fs => self.clone_9pfs,
            _ => true,
        };
        legacy && self.policy.clones(class)
    }
}

/// A completed clone, as reported by the daemon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompletedClone {
    /// The parent domain.
    pub parent: DomId,
    /// The new child domain.
    pub child: DomId,
    /// The child's generated name.
    pub name: String,
    /// Host interfaces created for the child's vifs.
    pub ifaces: Vec<IfaceId>,
}

/// A precomputed per-child second-stage plan: the parts of a child's
/// introduction that are a pure function of its notification, the parent
/// name and the child's per-parent sequence number. Built on the
/// fork/join pool for a whole notification batch; committed per child in
/// ring order, where the sequential path's state updates and virtual-time
/// charges happen unchanged.
#[derive(Debug)]
struct Stage2Plan {
    /// Planned per-parent sequence number (the commit loop re-derives it
    /// from the live counter and asserts agreement).
    seq: u64,
    /// The child's generated unique name.
    name: String,
    /// The child's Xenstore home path.
    home: String,
    /// The child's direct Xenstore writes, buffered as `(path, value)`
    /// pairs and committed in deterministic (ring) order.
    writes: Vec<(String, String)>,
}

/// The `xencloned` daemon state.
#[derive(Debug)]
pub struct Xencloned {
    clock: Clock,
    costs: Rc<CostModel>,
    /// Behavioural configuration.
    pub config: XenclonedConfig,
    /// Parents whose Xenstore information has been read and cached.
    parent_cache: HashSet<u32>,
    /// Cached parent names (part of the cached information).
    parent_names: HashMap<u32, String>,
    clone_seq: HashMap<u32, u64>,
    clones_completed: u64,
    trace: TraceSink,
    /// Deterministic fork/join pool for batch plan building
    /// (single-threaded by default; see [`Xencloned::attach_pool`]).
    pool: sim_core::par::Pool,
}

impl Xencloned {
    /// Creates the daemon.
    pub fn new(clock: Clock, costs: Rc<CostModel>) -> Self {
        Xencloned {
            clock,
            costs,
            config: XenclonedConfig::default(),
            parent_cache: HashSet::new(),
            parent_names: HashMap::new(),
            clone_seq: HashMap::new(),
            clones_completed: 0,
            trace: TraceSink::default(),
            pool: sim_core::par::Pool::single(),
        }
    }

    /// Attaches a trace sink (disabled by default); second-stage spans and
    /// parent-cache counters are recorded into it.
    pub fn attach_trace(&mut self, sink: TraceSink) {
        self.trace = sink;
    }

    /// Attaches the deterministic fork/join pool used to build per-child
    /// stage-2 plans for a whole notification batch (single-threaded by
    /// default, which keeps every code path byte-identical to the
    /// pre-pool behavior).
    pub fn attach_pool(&mut self, pool: sim_core::par::Pool) {
        self.pool = pool;
    }

    /// The attached trace sink.
    pub fn trace(&self) -> &TraceSink {
        &self.trace
    }

    /// Daemon startup: binds `VIRQ_CLONED` and enables cloning globally.
    pub fn start(&mut self, hv: &mut Hypervisor) -> Result<()> {
        hv.bind_virq(DomId::DOM0, hypervisor::event::Virq::Cloned)?;
        hv.cloneop(DomId::DOM0, CloneOp::SetGlobalEnabled(true))?;
        Ok(())
    }

    /// Total clones whose second stage this daemon completed.
    pub fn clones_completed(&self) -> u64 {
        self.clones_completed
    }

    /// Drains and handles every pending clone notification. Call this when
    /// `VIRQ_CLONED` fires (the platform routes the event here).
    #[allow(clippy::too_many_arguments)]
    pub fn handle_pending(
        &mut self,
        hv: &mut Hypervisor,
        xs: &mut Xenstore,
        dm: &mut DeviceManager,
        udev: &mut UdevBus,
        xl: &mut Xl,
        mux: Option<&mut (dyn CloneMux + '_)>,
    ) -> Result<Vec<CompletedClone>> {
        // ---- Plan phase: read the pending notifications without popping,
        // so a failing commit leaves the unprocessed tail in the ring
        // exactly as the sequential loop did. Per-parent sequence numbers
        // are pre-walked on the calling thread (they are order-dependent);
        // everything else in a plan — the child's name, home path and
        // buffered direct writes — is a pure function of its inputs, so a
        // whole family batch fans out across the pool. Plan building
        // charges no virtual time and mutates nothing; all clock and
        // state effects happen in the ordered commit below, byte-identical
        // at any thread count (the default pool runs the map inline).
        let batch: Vec<CloneNotification> = hv.clone_ring_pending().copied().collect();
        let mut next_seq: HashMap<u32, u64> = HashMap::new();
        let inputs: Vec<(CloneNotification, String, u64)> = batch
            .into_iter()
            .map(|n| {
                let parent = n.parent.0;
                let pname = self
                    .parent_names
                    .get(&parent)
                    .cloned()
                    .or_else(|| xs.peek(&format!("/local/domain/{parent}/name")))
                    .unwrap_or_else(|| format!("dom{parent}"));
                let seq = next_seq
                    .entry(parent)
                    .or_insert_with(|| self.clone_seq.get(&parent).copied().unwrap_or(0));
                *seq += 1;
                (n, pname, *seq)
            })
            .collect();
        let plans: Vec<(CloneNotification, Stage2Plan)> =
            self.pool.map(inputs, |_, (n, pname, seq)| {
                let name = format!("{pname}-c{seq}");
                let home = format!("/local/domain/{}", n.child.0);
                let writes = vec![
                    (format!("{home}/name"), name.clone()),
                    (format!("{home}/domid"), n.child.0.to_string()),
                ];
                (n, Stage2Plan { seq, name, home, writes })
            });

        // ---- Commit phase: sequential, in ring order.
        let mut done = Vec::new();
        let mut mux = mux;
        for (n, plan) in plans {
            let popped = hv.clone_ring_pop().expect("planned notification still queued");
            debug_assert_eq!(popped, n, "ring order is fixed while the daemon runs");
            let start = self.clock.now();
            match self.handle_one(hv, xs, dm, udev, xl, &mut mux, n, plan) {
                Ok(c) => {
                    self.trace
                        .record_ns("clone.stage2", self.clock.now().since(start).as_ns());
                    done.push(c);
                }
                Err(e) => {
                    self.trace.count_dom("clone.fail", popped.parent, 1);
                    return Err(e);
                }
            }
        }
        Ok(done)
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_one(
        &mut self,
        hv: &mut Hypervisor,
        xs: &mut Xenstore,
        dm: &mut DeviceManager,
        udev: &mut UdevBus,
        xl: &mut Xl,
        mux: &mut Option<&mut (dyn CloneMux + '_)>,
        n: CloneNotification,
        plan: Stage2Plan,
    ) -> Result<CompletedClone> {
        let CloneNotification { parent, child, .. } = n;
        let span = self.trace.span("xencloned.stage2");
        span.attr("parent", parent.0);
        span.attr("child", child.0);
        self.clock.advance(self.costs.xencloned_dispatch);

        // Read and cache the parent's Xenstore information on first use
        // (first clone ≈3 ms of userspace ops, later ≈1.9 ms, §6.2).
        if self.parent_cache.insert(parent.0) {
            self.trace.count_dom("xencloned.parent_cache.miss", parent, 1);
            self.clock.advance(self.costs.xencloned_parent_scan);
            let name = xs
                .read(DomId::DOM0, &format!("/local/domain/{}/name", parent.0))
                .unwrap_or_else(|_| format!("dom{}", parent.0));
            self.parent_names.insert(parent.0, name);
        } else {
            self.trace.count_dom("xencloned.parent_cache.hit", parent, 1);
        }

        // Introduce the child with the parent id (step 2.1).
        xs.introduce_domain(child, Some(parent))?;

        // Unique name — no validation scan needed. The plan precomputed
        // it; advance the live counter here so daemon state (and any
        // failure path) evolves exactly as the sequential loop's did.
        {
            let seq = self.clone_seq.entry(parent.0).or_insert(0);
            *seq += 1;
            debug_assert_eq!(*seq, plan.seq, "plan must agree with commit-order sequence");
        }
        let Stage2Plan { name, home, writes, .. } = plan;
        debug_assert_eq!(
            name,
            format!(
                "{}-c{}",
                self.parent_names
                    .get(&parent.0)
                    .cloned()
                    .unwrap_or_else(|| format!("dom{}", parent.0)),
                self.clone_seq[&parent.0]
            ),
            "planned name must match the sequential derivation"
        );
        // The child's buffered direct writes, committed in ring order —
        // identical charge sequence to the historical inline writes.
        for (path, value) in &writes {
            xs.write(DomId::DOM0, path, value)?;
        }

        let mut ifaces = Vec::new();
        if !self.config.minimal {
            // Basic (non-device) registry state.
            if self.config.use_xs_clone {
                let pm = format!("/local/domain/{}/memory", parent.0);
                if xs.exists(&pm) {
                    xs.xs_clone(
                        DomId::DOM0,
                        XsCloneOp::Basic,
                        parent,
                        child,
                        &pm,
                        &format!("{home}/memory"),
                    )?;
                }
            } else {
                for key in ["memory/target", "memory/static-max"] {
                    if let Ok(v) = xs.read(DomId::DOM0, &format!("/local/domain/{}/{key}", parent.0)) {
                        xs.write(DomId::DOM0, &format!("{home}/{key}"), &v)?;
                    }
                }
            }

            // Devices: one loop over the parent's bus entries, dispatched
            // through each device's declared clone semantics (steps
            // 2.1–2.3). The bus sorts by (class, devid), so consoles clone
            // first, then vifs by device index, then 9pfs — the same order
            // the legacy hand-enumerated stage used.
            let deep_copy = !self.config.use_xs_clone;
            for dev in dm.bus_devices(parent) {
                if !self.config.device_enabled(dev.id().class) {
                    continue;
                }
                let mut ctx = CloneCtx {
                    parent,
                    child,
                    deep_copy,
                    hv,
                    xs,
                    udev,
                    dm,
                };
                let outcome = dev.as_ref().clone_into(&mut ctx)?;
                ifaces.extend(outcome.ifaces);
            }

            // Userspace follow-ups for the udev events (step 2.3) —
            // enslaving each new vif.
            for e in udev.drain() {
                if let UdevEvent::VifCreated { .. } = e {
                    if mux.is_some() {
                        self.clock.advance(self.costs.bond_enslave);
                    } else {
                        self.clock.advance(self.costs.bridge_add);
                    }
                }
            }
            if let Some(m) = mux.as_deref_mut() {
                for i in &ifaces {
                    m.add_member(*i);
                }
            }
        }

        // Register in the instance-management registry.
        xl.register_clone(parent, child, &name, ifaces.clone());

        // Step 2.4: completion hypercall; parent resumes when all its
        // pending children completed.
        hv.cloneop(DomId::DOM0, CloneOp::Completion { child })?;
        self.clones_completed += 1;
        Ok(CompletedClone {
            parent,
            child,
            name,
            ifaces,
        })
    }
}

#[cfg(test)]
mod tests {
    use std::net::Ipv4Addr;

    use devices::udev::UdevBus;
    use hypervisor::domain::DomainState;
    use hypervisor::MachineConfig;
    use netmux::{Bond, CloneMux, XmitHashPolicy};
    use toolstack::{DomainConfig, KernelImage};

    use super::*;

    struct World {
        clock: Clock,
        hv: Hypervisor,
        xs: Xenstore,
        dm: DeviceManager,
        udev: UdevBus,
        xl: Xl,
        daemon: Xencloned,
    }

    fn world() -> World {
        let clock = Clock::new();
        let costs = Rc::new(CostModel::calibrated());
        let mut w = World {
            clock: clock.clone(),
            hv: Hypervisor::new(
                clock.clone(),
                costs.clone(),
                &MachineConfig {
                    guest_pool_mib: 512,
                    cores: 4,
                    notification_ring_capacity: 128,
                },
            ),
            xs: Xenstore::new(clock.clone(), costs.clone()),
            dm: DeviceManager::new(clock.clone(), costs.clone()),
            udev: UdevBus::new(),
            xl: Xl::new(clock.clone(), costs.clone()),
            daemon: Xencloned::new(clock, costs),
        };
        w.daemon.start(&mut w.hv).unwrap();
        w
    }

    fn boot_parent(w: &mut World) -> DomId {
        let cfg = DomainConfig::builder("udp")
            .memory_mib(4)
            .vif(Ipv4Addr::new(10, 0, 0, 2))
            .max_clones(64)
            .build();
        let img = KernelImage::minios("udp");
        w.xl
            .create(&mut w.hv, &mut w.xs, &mut w.dm, &mut w.udev, &cfg, &img)
            .unwrap()
            .id
    }

    fn fork(w: &mut World, parent: DomId, mux: Option<&mut dyn CloneMux>) -> CompletedClone {
        w.hv.cloneop(
            parent,
            CloneOp::Clone {
                target: None,
                nr_clones: 1,
            },
        )
        .unwrap();
        let done = w
            .daemon
            .handle_pending(&mut w.hv, &mut w.xs, &mut w.dm, &mut w.udev, &mut w.xl, mux)
            .unwrap();
        assert_eq!(done.len(), 1);
        done.into_iter().next().unwrap()
    }

    #[test]
    fn full_clone_second_stage() {
        let mut w = world();
        let parent = boot_parent(&mut w);
        let mut bond = Bond::new(XmitHashPolicy::Layer34);
        let c = fork(&mut w, parent, Some(&mut bond));

        // Parent and child both run again.
        assert_eq!(w.hv.domain(parent).unwrap().state, DomainState::Running);
        assert_eq!(w.hv.domain(c.child).unwrap().state, DomainState::Running);
        // The clone is named, registered and in Xenstore.
        assert_eq!(c.name, "udp-c1");
        assert_eq!(
            w.xs.read(DomId::DOM0, &format!("/local/domain/{}/name", c.child.0)).unwrap(),
            "udp-c1"
        );
        assert!(w.xl.record(c.child).is_some());
        assert_eq!(
            w.xs.read(DomId::DOM0, &format!("/local/domain/{}/parent", c.child.0)).unwrap(),
            parent.0.to_string()
        );
        // Its vif exists, is connected and was enslaved to the bond.
        assert!(w.dm.vif(c.child, 0).unwrap().is_connected());
        assert_eq!(bond.member_count(), 1);
        // Same MAC/IP as the parent.
        assert_eq!(w.dm.vif(c.child, 0).unwrap().mac, w.dm.vif(parent, 0).unwrap().mac);
        // Console attached, fresh output.
        assert!(w.dm.console_attached(c.child));
    }

    #[test]
    fn clone_is_roughly_8x_faster_than_boot() {
        let mut w = world();
        let t0 = w.clock.now();
        let parent = boot_parent(&mut w);
        let boot = w.clock.now().since(t0);

        // Warm up the daemon cache with one clone.
        fork(&mut w, parent, None);

        let t1 = w.clock.now();
        fork(&mut w, parent, None);
        let clone = w.clock.now().since(t1);

        let speedup = boot.as_ms_f64() / clone.as_ms_f64();
        assert!(
            speedup > 3.0,
            "clone ({clone}) must be several times faster than boot ({boot}), got {speedup:.1}x"
        );
    }

    #[test]
    fn deep_copy_clone_is_slower_than_xs_clone() {
        let mut w = world();
        let parent = boot_parent(&mut w);
        fork(&mut w, parent, None); // warm cache

        let t0 = w.clock.now();
        fork(&mut w, parent, None);
        let fast = w.clock.now().since(t0);

        w.daemon.config.use_xs_clone = false;
        let t1 = w.clock.now();
        fork(&mut w, parent, None);
        let slow = w.clock.now().since(t1);

        assert!(slow > fast, "deep copy ({slow}) must exceed xs_clone ({fast})");
    }

    #[test]
    fn first_clone_charges_parent_scan() {
        let mut w = world();
        let parent = boot_parent(&mut w);

        let t0 = w.clock.now();
        fork(&mut w, parent, None);
        let first = w.clock.now().since(t0);

        let t1 = w.clock.now();
        fork(&mut w, parent, None);
        let second = w.clock.now().since(t1);

        assert!(first > second, "first clone ({first}) includes the parent scan ({second})");
    }

    #[test]
    fn minimal_mode_skips_devices() {
        let mut w = world();
        let parent = boot_parent(&mut w);
        w.daemon.config.minimal = true;
        let c = fork(&mut w, parent, None);
        assert!(w.dm.vif(c.child, 0).is_none(), "no device cloning in minimal mode");
        assert!(w.xl.record(c.child).is_some(), "but toolstack introduction happened");
        assert_eq!(w.hv.domain(parent).unwrap().state, DomainState::Running);
    }

    #[test]
    fn network_skipping_for_redis_style_clones() {
        let mut w = world();
        let parent = boot_parent(&mut w);
        w.daemon.config.policy = ClonePolicy::all().set(DeviceClass::Vif, false);
        let c = fork(&mut w, parent, None);
        assert!(w.dm.vif(c.child, 0).is_none());
        assert!(w.dm.console_attached(c.child), "console still cloned");
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_class_booleans_still_disable_classes() {
        let mut w = world();
        let parent = boot_parent(&mut w);
        w.daemon.config.clone_network = false;
        assert!(!w.daemon.config.device_enabled(DeviceClass::Vif));
        assert!(w.daemon.config.device_enabled(DeviceClass::Console));
        let c = fork(&mut w, parent, None);
        assert!(w.dm.vif(c.child, 0).is_none(), "legacy boolean still honoured");
        assert!(w.dm.console_attached(c.child));
    }

    #[test]
    fn clone_names_count_up_per_parent() {
        let mut w = world();
        let parent = boot_parent(&mut w);
        let a = fork(&mut w, parent, None);
        let b = fork(&mut w, parent, None);
        assert_eq!(a.name, "udp-c1");
        assert_eq!(b.name, "udp-c2");
        assert_eq!(w.daemon.clones_completed(), 2);
    }
}

//! Property tests for the memory subsystem and cloning: COW must behave
//! exactly like fork-semantics on a reference model, and no frame may ever
//! leak or be double-owned.

use std::collections::HashMap;
use std::rc::Rc;

use testkit::prop::{check, one_of, ranges, u8s, usizes, vecs, Gen};

use hypervisor::cloneop::{CloneOp, CloneOpResult};
use hypervisor::domain::ClonePolicy;
use hypervisor::memory::FrameOwner;
use hypervisor::{Hypervisor, MachineConfig};
use sim_core::{Clock, CostModel, DomId, Pfn};

/// Operations the property machine can perform.
#[derive(Debug, Clone)]
enum Op {
    /// Write a marker byte to (domain-index, pfn).
    Write { dom_idx: usize, pfn: u64, val: u8 },
    /// Clone an existing domain.
    Clone { dom_idx: usize },
    /// Destroy a (non-root) domain.
    Destroy { dom_idx: usize },
}

fn op_strategy() -> impl Gen<Value = Op> {
    one_of(vec![
        (usizes(), ranges(0u64..64), u8s())
            .map(|(dom_idx, pfn, val)| Op::Write { dom_idx, pfn, val })
            .boxed(),
        usizes().map(|dom_idx| Op::Clone { dom_idx }).boxed(),
        usizes().map(|dom_idx| Op::Destroy { dom_idx }).boxed(),
    ])
}

fn fresh_hv() -> Hypervisor {
    let mut hv = Hypervisor::new(
        Clock::new(),
        Rc::new(CostModel::free()),
        &MachineConfig {
            guest_pool_mib: 512,
            cores: 2,
            notification_ring_capacity: 4096,
        },
    );
    hv.set_cloning_enabled(true);
    hv
}

fn make_root(hv: &mut Hypervisor) -> DomId {
    let d = hv.create_domain("root", 4, 1).unwrap();
    hv.set_clone_policy(
        d,
        ClonePolicy {
            enabled: true,
            max_clones: u32::MAX,
            resume_children: true,
        },
    )
    .unwrap();
    hv.unpause(d).unwrap();
    d
}

fn clone_one(hv: &mut Hypervisor, parent: DomId) -> DomId {
    let r = hv
        .cloneop(
            DomId::DOM0,
            CloneOp::Clone {
                target: Some(parent),
                nr_clones: 1,
            },
        )
        .unwrap();
    let CloneOpResult::Cloned(kids) = r else { panic!() };
    let child = kids[0];
    hv.clone_ring_pop().unwrap();
    hv.cloneop(DomId::DOM0, CloneOp::Completion { child }).unwrap();
    child
}

/// COW semantics match a per-domain reference model: every domain
/// observes its own writes and its fork-point inheritance, never a
/// sibling's writes.
#[test]
fn cow_matches_reference_model() {
    check(64, |g| {
        let ops = g.draw(&vecs(op_strategy(), 1..120));

        let mut hv = fresh_hv();
        let root = make_root(&mut hv);
        let mut doms = vec![root];
        // Reference: per-domain view of each written pfn.
        let mut model: HashMap<(u32, u64), u8> = HashMap::new();

        for op in ops {
            match op {
                Op::Write { dom_idx, pfn, val } => {
                    let dom = doms[dom_idx % doms.len()];
                    hv.write_page(dom, Pfn(pfn), 0, &[val]).unwrap();
                    model.insert((dom.0, pfn), val);
                }
                Op::Clone { dom_idx } => {
                    if doms.len() >= 24 {
                        continue;
                    }
                    let parent = doms[dom_idx % doms.len()];
                    let child = clone_one(&mut hv, parent);
                    // The child inherits the parent's visible state.
                    let inherited: Vec<(u64, u8)> = model
                        .iter()
                        .filter(|((d, _), _)| *d == parent.0)
                        .map(|((_, p), v)| (*p, *v))
                        .collect();
                    for (p, v) in inherited {
                        model.insert((child.0, p), v);
                    }
                    doms.push(child);
                }
                Op::Destroy { dom_idx } => {
                    if doms.len() <= 1 {
                        continue;
                    }
                    let idx = 1 + dom_idx % (doms.len() - 1);
                    let dom = doms[idx];
                    // Only destroy leaves to keep the family tree simple.
                    if hv.domain(dom).unwrap().children.is_empty() {
                        hv.destroy_domain(dom).unwrap();
                        doms.remove(idx);
                        model.retain(|(d, _), _| *d != dom.0);
                    }
                }
            }
        }

        // Every modelled byte must be readable with the modelled value.
        for ((dom, pfn), val) in &model {
            let mut buf = [0u8; 1];
            hv.read_page(DomId(*dom), Pfn(*pfn), 0, &mut buf).unwrap();
            assert_eq!(buf[0], *val, "dom{} pfn{}", dom, pfn);
        }
    });
}

/// Frame accounting: COW refcounts equal the number of domains mapping
/// each shared frame, and destroying everything returns all memory.
#[test]
fn refcounts_and_no_leaks() {
    check(64, |g| {
        let ops = g.draw(&vecs(op_strategy(), 1..80));

        let mut hv = fresh_hv();
        let baseline = hv.free_pages();
        let root = make_root(&mut hv);
        let mut doms = vec![root];

        for op in ops {
            match op {
                Op::Write { dom_idx, pfn, val } => {
                    let dom = doms[dom_idx % doms.len()];
                    hv.write_page(dom, Pfn(pfn), 0, &[val]).unwrap();
                }
                Op::Clone { dom_idx } => {
                    if doms.len() < 16 {
                        let parent = doms[dom_idx % doms.len()];
                        doms.push(clone_one(&mut hv, parent));
                    }
                }
                Op::Destroy { .. } => {}
            }
        }

        // Count how many domains map each COW frame.
        let mut mappers: HashMap<u64, u32> = HashMap::new();
        for d in &doms {
            for mfn in hv.domain(*d).unwrap().p2m.iter().flatten() {
                if hv.frames().inspect(mfn).unwrap().owner() == FrameOwner::Cow {
                    *mappers.entry(mfn.0).or_default() += 1;
                }
            }
        }
        for (mfn, count) in mappers {
            let rc = hv.frames().inspect(sim_core::Mfn(mfn)).unwrap().refcount();
            assert_eq!(rc, count, "mfn {}", mfn);
        }

        // Tear everything down, children first.
        while doms.len() > 1 {
            let leaf_idx = doms
                .iter()
                .position(|d| hv.domain(*d).unwrap().children.is_empty())
                .expect("a leaf always exists");
            let dom = doms.remove(leaf_idx);
            if dom != root {
                hv.destroy_domain(dom).unwrap();
            } else {
                doms.push(dom);
                // Root was the only leaf: everything else is gone.
                if doms.len() == 1 {
                    break;
                }
            }
        }
        hv.destroy_domain(root).unwrap();
        assert_eq!(hv.free_pages(), baseline, "leaked frames");
    });
}

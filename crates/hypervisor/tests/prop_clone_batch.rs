//! Batch/sequential clone equivalence: `Clone { nr_clones: N }` must be
//! observationally identical to N times `Clone { nr_clones: 1 }` — same
//! child ids and names, same p2m contents, same frame owners/refcounts/
//! contents, same free-frame count and same virtual-clock advance — plus
//! the atomicity regression tests for failing batches.

use std::rc::Rc;

use testkit::prop::{check, ranges, u8s, vecs, Gen};

use hypervisor::cloneop::{CloneOp, CloneOpResult};
use hypervisor::domain::{ClonePolicy, PrivatePolicy};
use hypervisor::error::HvError;
use hypervisor::memory::FrameOwner;
use hypervisor::{Hypervisor, MachineConfig};
use sim_core::{Clock, CostModel, DomId, Mfn, Pfn, SimDuration};

/// The calibrated model with `hypercall_base` zeroed: a batched call
/// enters the hypervisor once where N sequential calls enter N times (true
/// at the seed revision too), so the fixed dispatch cost is the one charge
/// that legitimately differs. Everything the first stage itself charges
/// must match exactly.
fn clone_costs() -> CostModel {
    let mut c = CostModel::calibrated();
    c.hypercall_base = SimDuration::ZERO;
    c
}

fn fresh_hv(clock: Clock) -> Hypervisor {
    let mut hv = Hypervisor::new(
        clock,
        Rc::new(clone_costs()),
        &MachineConfig {
            guest_pool_mib: 64,
            cores: 2,
            notification_ring_capacity: 4096,
        },
    );
    hv.set_cloning_enabled(true);
    hv
}

fn make_root(hv: &mut Hypervisor) -> DomId {
    let d = hv.create_domain("root", 4, 2).unwrap();
    hv.set_clone_policy(
        d,
        ClonePolicy {
            enabled: true,
            max_clones: u32::MAX,
            resume_children: true,
        },
    )
    .unwrap();
    hv.unpause(d).unwrap();
    d
}

fn clone_n(hv: &mut Hypervisor, parent: DomId, nr: u32) -> Vec<DomId> {
    let r = hv
        .cloneop(
            DomId::DOM0,
            CloneOp::Clone {
                target: Some(parent),
                nr_clones: nr,
            },
        )
        .unwrap();
    let CloneOpResult::Cloned(kids) = r else {
        panic!("unexpected result")
    };
    kids
}

/// A randomly drawn parent layout to clone from.
#[derive(Debug, Clone)]
struct Layout {
    /// (pfn, marker) byte writes — materialize private copies and content.
    writes: Vec<(u64, u8)>,
    /// (pfn, pattern) whole-page fills.
    fills: Vec<(u64, u8)>,
    /// Extra private pfns: (pfn, policy selector).
    extra_private: Vec<(u64, u8)>,
    /// Extra IDC (writable-shared) pfns.
    idc: Vec<u64>,
    /// Completed single clones run before the measured call, so the
    /// parent's shareable frames may already be COW (reshare path).
    pre_clones: u64,
    /// Fan-out of the measured call.
    nr: u32,
}

fn layout_gen() -> impl Gen<Value = Layout> {
    (
        vecs((ranges(0u64..64), u8s()).map(|(p, v)| (p, v)), 0..12),
        vecs((ranges(0u64..64), u8s()).map(|(p, v)| (p, v)), 0..6),
        vecs((ranges(0u64..64), u8s()).map(|(p, v)| (p, v)), 0..4),
        vecs(ranges(0u64..64), 0..4),
        ranges(0u64..3),
        ranges(1u64..17),
    )
        .map(|(writes, fills, extra_private, idc, pre_clones, nr)| Layout {
            writes,
            fills,
            extra_private,
            idc,
            pre_clones,
            nr: nr as u32,
        })
}

/// Builds a parent from `layout` and runs the measured clone either as one
/// batched call or as `nr` sequential single-clone calls. Returns the
/// hypervisor, the parent, the children and the virtual time the measured
/// call(s) took.
fn run(layout: &Layout, batched: bool) -> (Hypervisor, DomId, Vec<DomId>, u64) {
    let clock = Clock::new();
    let mut hv = fresh_hv(clock.clone());
    let parent = make_root(&mut hv);

    for &(pfn, sel) in &layout.extra_private {
        let policy = match sel % 3 {
            0 => PrivatePolicy::Copy,
            1 => PrivatePolicy::Fresh,
            _ => PrivatePolicy::Rewrite,
        };
        hv.register_private_pfn(parent, Pfn(pfn), policy).unwrap();
    }
    for &pfn in &layout.idc {
        hv.register_idc_pfn(parent, Pfn(pfn)).unwrap();
    }
    for &(pfn, val) in &layout.writes {
        hv.write_page(parent, Pfn(pfn), 0, &[val]).unwrap();
    }
    for &(pfn, pat) in &layout.fills {
        hv.fill_page(parent, Pfn(pfn), pat as u64).unwrap();
    }

    // Warm clones (completed and drained) so the measured call may start
    // from an already-COW parent.
    for _ in 0..layout.pre_clones {
        let kid = clone_n(&mut hv, parent, 1)[0];
        hv.clone_ring_pop().unwrap();
        hv.cloneop(DomId::DOM0, CloneOp::Completion { child: kid })
            .unwrap();
    }

    let t0 = clock.now();
    let children = if batched {
        clone_n(&mut hv, parent, layout.nr)
    } else {
        let mut kids = Vec::new();
        for _ in 0..layout.nr {
            kids.extend(clone_n(&mut hv, parent, 1));
        }
        kids
    };
    let elapsed = clock.now().since(t0).as_ns();
    (hv, parent, children, elapsed)
}

/// Every observable of both runs must match.
#[test]
fn batched_clone_equals_sequential_clones() {
    check(40, |g| {
        let layout = g.draw(&layout_gen());
        let (mut hv_a, parent_a, kids_a, t_a) = run(&layout, true);
        let (mut hv_b, parent_b, kids_b, t_b) = run(&layout, false);

        assert_eq!(kids_a, kids_b, "child ids must match ({layout:?})");
        assert_eq!(t_a, t_b, "virtual-clock advance must match ({layout:?})");
        assert_eq!(hv_a.free_pages(), hv_b.free_pages());
        assert_eq!(hv_a.domain_count(), hv_b.domain_count());

        // Domain-level state: parent bookkeeping and each child.
        let doms: Vec<DomId> = std::iter::once(parent_a).chain(kids_a.iter().copied()).collect();
        assert_eq!(parent_a, parent_b);
        for d in &doms {
            let a = hv_a.domain(*d).unwrap();
            let b = hv_b.domain(*d).unwrap();
            assert_eq!(a.name, b.name, "name of {d:?}");
            assert_eq!(a.state, b.state, "state of {d:?}");
            assert_eq!(a.parent, b.parent);
            assert_eq!(a.p2m, b.p2m, "p2m of {d:?}");
            assert_eq!(a.children, b.children);
            assert_eq!(a.clones_created, b.clones_created);
            assert_eq!(a.pending_stage2, b.pending_stage2);
            assert_eq!(a.vcpus[0].regs.rax, b.vcpus[0].regs.rax);
        }

        // Frame-level state: owner map, refcounts, writability, contents.
        assert_eq!(hv_a.frames().total_frames(), hv_b.frames().total_frames());
        for m in 0..hv_a.frames().total_frames() {
            let fa = hv_a.frames().inspect(Mfn(m)).unwrap();
            let fb = hv_b.frames().inspect(Mfn(m)).unwrap();
            assert_eq!(fa.owner(), fb.owner(), "owner of mfn {m}");
            assert_eq!(fa.refcount(), fb.refcount(), "refcount of mfn {m}");
            assert_eq!(fa.writable(), fb.writable(), "writability of mfn {m}");
            assert_eq!(fa.content(), fb.content(), "content of mfn {m}");
        }
        assert_eq!(hv_a.memory_stats(), hv_b.memory_stats());

        // The notification ring holds the same entries in the same order.
        assert_eq!(hv_a.clone_ring_len(), hv_b.clone_ring_len());
        loop {
            let (na, nb) = (hv_a.clone_ring_pop(), hv_b.clone_ring_pop());
            assert_eq!(na, nb, "notification ring entries must match");
            if na.is_none() {
                break;
            }
        }
    });
}

// ---------------------------------------------------------------------
// Mid-batch failure atomicity (regression tests for the partial-batch
// failure the sequential loop allowed: child 1 created, child 2 fails,
// parent stranded in PausedForClone).
// ---------------------------------------------------------------------

fn frame_fingerprint(hv: &Hypervisor) -> Vec<(FrameOwner, u32)> {
    (0..hv.frames().total_frames())
        .map(|m| {
            let f = hv.frames().inspect(Mfn(m)).unwrap();
            (f.owner(), f.refcount())
        })
        .collect()
}

fn parent_fingerprint(hv: &Hypervisor, d: DomId) -> (u32, u32, hypervisor::domain::DomainState, usize) {
    let p = hv.domain(d).unwrap();
    (p.clones_created, p.pending_stage2, p.state, p.children.len())
}

#[test]
fn batch_failing_on_ring_capacity_is_atomic() {
    let mut hv = Hypervisor::new(
        Clock::new(),
        Rc::new(CostModel::free()),
        &MachineConfig {
            guest_pool_mib: 64,
            cores: 1,
            notification_ring_capacity: 4,
        },
    );
    hv.set_cloning_enabled(true);
    let p = make_root(&mut hv);
    clone_n(&mut hv, p, 3); // 3 of 4 ring slots in use

    let frames_before = frame_fingerprint(&hv);
    let free_before = hv.free_pages();
    let parent_before = parent_fingerprint(&hv, p);
    let domains_before = hv.domain_count();

    // Two children need two slots; only one is free. The whole batch must
    // fail without creating the first child.
    let r = hv.cloneop(
        DomId::DOM0,
        CloneOp::Clone {
            target: Some(p),
            nr_clones: 2,
        },
    );
    assert_eq!(r, Err(HvError::NotificationRingFull));

    assert_eq!(frame_fingerprint(&hv), frames_before, "refcounts/owners must be untouched");
    assert_eq!(hv.free_pages(), free_before, "no frames may leak");
    assert_eq!(parent_fingerprint(&hv, p), parent_before, "parent state must be untouched");
    assert_eq!(hv.domain_count(), domains_before, "no child may be created");
    assert_eq!(hv.clone_ring_len(), 3);

    // Draining one slot makes the same batch succeed.
    hv.clone_ring_pop().unwrap();
    assert_eq!(clone_n(&mut hv, p, 2).len(), 2);
}

#[test]
fn batch_failing_on_frame_budget_is_atomic() {
    let mut hv = Hypervisor::new(
        Clock::new(),
        Rc::new(CostModel::free()),
        &MachineConfig {
            guest_pool_mib: 8,
            cores: 1,
            notification_ring_capacity: 4096,
        },
    );
    hv.set_cloning_enabled(true);
    let p = make_root(&mut hv);

    // Probe the per-child frame cost with a single clone.
    let before_probe = hv.free_pages();
    clone_n(&mut hv, p, 1);
    let per_child = before_probe - hv.free_pages();
    assert!(per_child > 0);

    let frames_before = frame_fingerprint(&hv);
    let free_before = hv.free_pages();
    let parent_before = parent_fingerprint(&hv, p);
    let domains_before = hv.domain_count();
    let ring_before = hv.clone_ring_len();

    // One more child than the pool can hold: some children would fit, so
    // the sequential loop would have created them before failing.
    let nr = (free_before / per_child + 1) as u32;
    let r = hv.cloneop(
        DomId::DOM0,
        CloneOp::Clone {
            target: Some(p),
            nr_clones: nr,
        },
    );
    assert_eq!(r, Err(HvError::OutOfMemory));

    assert_eq!(frame_fingerprint(&hv), frames_before, "refcounts/owners must be untouched");
    assert_eq!(hv.free_pages(), free_before, "no frames may leak");
    assert_eq!(parent_fingerprint(&hv, p), parent_before, "parent state must be untouched");
    assert_eq!(hv.domain_count(), domains_before, "no child may be created");
    assert_eq!(hv.clone_ring_len(), ring_before, "no notification may be queued");

    // A batch within budget still succeeds afterwards.
    assert_eq!(clone_n(&mut hv, p, nr - 2).len() as u32, nr - 2);
}

#[test]
fn batch_failing_on_clone_limit_is_atomic() {
    let clock = Clock::new();
    let mut hv = fresh_hv(clock.clone());
    let p = hv.create_domain("root", 4, 1).unwrap();
    hv.set_clone_policy(
        p,
        ClonePolicy {
            enabled: true,
            max_clones: 3,
            resume_children: true,
        },
    )
    .unwrap();
    hv.unpause(p).unwrap();
    clone_n(&mut hv, p, 2);

    let frames_before = frame_fingerprint(&hv);
    let parent_before = parent_fingerprint(&hv, p);
    let t0 = clock.now();

    // 2 created + 2 requested > 3 allowed: rejected before any mutation,
    // even though one more child would have been within the limit.
    let r = hv.cloneop(
        DomId::DOM0,
        CloneOp::Clone {
            target: Some(p),
            nr_clones: 2,
        },
    );
    assert_eq!(r, Err(HvError::CloneLimit(p)));
    assert_eq!(frame_fingerprint(&hv), frames_before);
    assert_eq!(parent_fingerprint(&hv, p), parent_before);
    // Only the hypercall dispatch cost may have been charged.
    assert_eq!(clock.now().since(t0), clone_costs().hypercall_base);
}

//! A minimal CPU pool used by the throughput experiments.
//!
//! The evaluation workloads (NGINX workers, FaaS instances) pin each vCPU to
//! a physical core and service requests serially. [`CpuPool`] models exactly
//! that: each core has a *busy-until* horizon; scheduling a service on a
//! core starts it at `max(now, busy_until)` and returns the completion
//! instant. This produces queueing, saturation and the linear-scaling shapes
//! of Figs. 7 and 11 without a full credit scheduler.

use sim_core::{SimDuration, SimTime};

/// A pool of physical cores with per-core busy horizons.
#[derive(Debug, Clone)]
pub struct CpuPool {
    busy_until: Vec<SimTime>,
}

impl CpuPool {
    /// Creates a pool of `cores` idle cores.
    pub fn new(cores: usize) -> Self {
        CpuPool {
            busy_until: vec![SimTime::ZERO; cores.max(1)],
        }
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.busy_until.len()
    }

    /// Schedules `service` of work on `core` arriving at `now`; returns the
    /// completion time. Work queues behind whatever the core is already
    /// committed to.
    pub fn schedule(&mut self, core: usize, now: SimTime, service: SimDuration) -> SimTime {
        let core = core % self.busy_until.len();
        let start = self.busy_until[core].max(now);
        let done = start + service;
        self.busy_until[core] = done;
        done
    }

    /// Returns the core's current busy horizon.
    pub fn busy_until(&self, core: usize) -> SimTime {
        self.busy_until[core % self.busy_until.len()]
    }

    /// Returns the queueing delay a request arriving `now` on `core` would
    /// experience before starting service.
    pub fn backlog(&self, core: usize, now: SimTime) -> SimDuration {
        self.busy_until(core).since(now)
    }

    /// Picks the least-loaded core (earliest busy horizon, lowest index on
    /// ties).
    pub fn least_loaded(&self) -> usize {
        self.busy_until
            .iter()
            .enumerate()
            .min_by_key(|(i, t)| (**t, *i))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Resets all cores to idle at time zero (between experiment runs).
    pub fn reset(&mut self) {
        for t in &mut self.busy_until {
            *t = SimTime::ZERO;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_service_queues() {
        let mut p = CpuPool::new(1);
        let t0 = SimTime::ZERO;
        let d = SimDuration::from_us(10);
        let a = p.schedule(0, t0, d);
        let b = p.schedule(0, t0, d);
        assert_eq!(a.as_ns(), 10_000);
        assert_eq!(b.as_ns(), 20_000, "second request queues behind first");
    }

    #[test]
    fn idle_core_starts_at_arrival() {
        let mut p = CpuPool::new(2);
        let done = p.schedule(1, SimTime::from_ns(500), SimDuration::from_ns(100));
        assert_eq!(done.as_ns(), 600);
    }

    #[test]
    fn least_loaded_picks_earliest_horizon() {
        let mut p = CpuPool::new(3);
        p.schedule(0, SimTime::ZERO, SimDuration::from_us(5));
        p.schedule(2, SimTime::ZERO, SimDuration::from_us(1));
        assert_eq!(p.least_loaded(), 1);
    }

    #[test]
    fn backlog_measures_wait() {
        let mut p = CpuPool::new(1);
        p.schedule(0, SimTime::ZERO, SimDuration::from_us(10));
        assert_eq!(p.backlog(0, SimTime::from_ns(4_000)).as_ns(), 6_000);
        assert_eq!(p.backlog(0, SimTime::from_ns(20_000)), SimDuration::ZERO);
    }

    #[test]
    fn reset_clears_horizons() {
        let mut p = CpuPool::new(2);
        p.schedule(0, SimTime::ZERO, SimDuration::from_secs(1));
        p.reset();
        assert_eq!(p.busy_until(0), SimTime::ZERO);
    }

    #[test]
    fn zero_core_pool_clamps_to_one() {
        let p = CpuPool::new(0);
        assert_eq!(p.cores(), 1);
    }
}

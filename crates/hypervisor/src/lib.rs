//! A Xen-like paravirtualization hypervisor model with Nephele cloning
//! support.
//!
//! This crate implements the hypervisor half of the Nephele design (§4.1,
//! §5): domains with vCPUs, a machine frame table with page ownership and
//! copy-on-write sharing through `dom_cow`, grant tables and event channels
//! (both extended with the `DOMID_CHILD` wildcard), the `CLONEOP` hypercall
//! with its subcommands, and the clone notification ring that wakes the
//! `xencloned` daemon via `VIRQ_CLONED`.
//!
//! The hypervisor is purely mechanical: it manipulates real data structures
//! and charges virtual time from the shared
//! [`CostModel`]. Policy (what to clone, how to wire
//! devices) lives in the toolstack and daemon crates.

pub mod cloneop;
pub mod domain;
pub mod error;
pub mod event;
pub mod grant;
pub mod memory;
pub mod notify;
pub mod p2m;
pub mod scheduler;
pub mod vcpu;

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::rc::Rc;

use sim_core::{
    ids::mib_to_pages,
    Clock,
    CostModel,
    DomId,
    Mfn,
    Pfn,
    TraceSink, //
};

use crate::domain::{ClonePolicy, Domain, DomainState, PrivatePolicy};
use crate::error::{HvError, Result};
use crate::event::{Channel, Port, Virq};
use crate::grant::GrantRef;
use crate::memory::{CowResolution, FrameOwner, FrameTable, MemoryStats, PageContent};
use crate::notify::NotificationRing;
use crate::p2m::P2m;
use crate::scheduler::CpuPool;
use crate::vcpu::Vcpu;

/// Static machine description.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Memory available to guest domains, in MiB (the paper splits its
    /// 16 GiB machine into 4 GiB for Dom0 and 12 GiB for the hypervisor
    /// guest pool, §6.2).
    pub guest_pool_mib: u64,
    /// Physical cores.
    pub cores: usize,
    /// Capacity of the clone notification ring.
    pub notification_ring_capacity: usize,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            guest_pool_mib: 12 * 1024,
            cores: 4,
            notification_ring_capacity: NotificationRing::DEFAULT_CAPACITY,
        }
    }
}

/// An event-channel notification waiting to be dispatched by the platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingEvent {
    /// Target domain.
    pub dom: DomId,
    /// Target port within the domain.
    pub port: Port,
    /// Set when the port is bound to a VIRQ.
    pub virq: Option<Virq>,
}

/// A serialized snapshot of a domain's memory, used by save/restore.
#[derive(Debug, Clone)]
pub struct MemoryImage {
    /// Mapped pages and their contents at save time.
    pub pages: Vec<(Pfn, PageContent)>,
    /// Configured p2m size. Restore copies the *entire* configured memory
    /// back regardless of what the guest actually used, which is why
    /// restore is slower than boot in Fig. 4.
    pub p2m_size: u64,
}

/// The hypervisor.
#[derive(Debug)]
pub struct Hypervisor {
    clock: Clock,
    costs: Rc<CostModel>,
    frames: FrameTable,
    domains: BTreeMap<u32, Domain>,
    next_domid: u32,
    /// Ids of destroyed domains, reused lowest-first by [`Hypervisor::alloc_domid`].
    free_domids: BTreeSet<u32>,
    clone_ring: NotificationRing,
    cloning_enabled: bool,
    pending_events: VecDeque<PendingEvent>,
    /// Fan-out registry for parent-side `DOMID_CHILD` channels:
    /// (parent, parent_port) → registration-ordered (child, child_port)
    /// targets. Keyed by a global registration sequence so iteration
    /// order is exactly the bind order (what the old `Vec` gave).
    child_bindings: HashMap<(u32, Port), BTreeMap<u64, (DomId, Port)>>,
    /// Next registration sequence for `child_bindings`.
    binding_seq: u64,
    /// Reverse index: child → `child_bindings` entries naming it, so a
    /// child's destruction unlinks its bindings in O(own bindings)
    /// instead of scanning every fan-out list (O(total bindings)).
    binding_memberships: HashMap<u32, Vec<((u32, Port), u64)>>,
    /// Reverse index: parent → its registered fan-out ports, so a
    /// parent's destruction drops its registry keys without a key scan.
    owned_binding_ports: HashMap<u32, BTreeSet<Port>>,
    /// Referrer index: referenced domain → (referring domain → number
    /// of channel + grant entries in the referrer's tables naming it).
    /// Maintained on channel-pair wiring, grant creation, clone
    /// insertion and destruction; only real domain ids are tracked
    /// (wildcards like `DOMID_CHILD` never need a death sweep). This is
    /// what makes [`Hypervisor::destroy_domain`] O(actual references)
    /// instead of a walk over every live domain.
    peer_refs: HashMap<u32, BTreeMap<u32, u64>>,
    cpu_pool: CpuPool,
    trace: TraceSink,
    /// Deterministic fork/join pool for host-parallel batch stamping
    /// (single-threaded by default; see [`Hypervisor::attach_pool`]).
    par_pool: sim_core::par::Pool,
}

impl Hypervisor {
    /// Boots the hypervisor: initializes the frame table, creates Dom0
    /// (whose own RAM lives outside the guest pool) and the CPU pool.
    pub fn new(clock: Clock, costs: Rc<CostModel>, config: &MachineConfig) -> Self {
        let total = mib_to_pages(config.guest_pool_mib);
        let mut hv = Hypervisor {
            clock,
            costs,
            frames: FrameTable::new(total),
            domains: BTreeMap::new(),
            next_domid: 0,
            free_domids: BTreeSet::new(),
            clone_ring: NotificationRing::new(config.notification_ring_capacity),
            cloning_enabled: false,
            pending_events: VecDeque::new(),
            child_bindings: HashMap::new(),
            binding_seq: 0,
            binding_memberships: HashMap::new(),
            owned_binding_ports: HashMap::new(),
            peer_refs: HashMap::new(),
            cpu_pool: CpuPool::new(config.cores),
            trace: TraceSink::default(),
            par_pool: sim_core::par::Pool::single(),
        };
        // Dom0 exists from boot; its memory is modelled by the Dom0 model,
        // so it maps no pages from the guest pool.
        hv.create_domain_inner("Domain-0", 0, 1)
            .expect("dom0 creation cannot fail on an empty machine");
        hv
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// The shared cost model.
    pub fn costs(&self) -> &CostModel {
        &self.costs
    }

    /// Attaches a trace sink (disabled by default); all clone-path spans
    /// and COW-fault counters are recorded into it.
    pub fn attach_trace(&mut self, sink: TraceSink) {
        self.trace = sink;
    }

    /// Attaches the deterministic fork/join pool used for host-parallel
    /// batch stamping (single-threaded by default, which keeps every
    /// code path byte-identical to the pre-pool behavior).
    pub fn attach_pool(&mut self, pool: sim_core::par::Pool) {
        self.par_pool = pool;
    }

    /// The attached fork/join pool (a cheap copy — the pool is just the
    /// deterministic splitting policy).
    pub fn pool(&self) -> sim_core::par::Pool {
        self.par_pool
    }

    /// The attached trace sink.
    pub fn trace(&self) -> &TraceSink {
        &self.trace
    }

    /// The physical CPU pool.
    pub fn cpu_pool(&mut self) -> &mut CpuPool {
        &mut self.cpu_pool
    }

    // ------------------------------------------------------------------
    // Domain lifecycle
    // ------------------------------------------------------------------

    fn create_domain_inner(&mut self, name: &str, mem_pages: u64, vcpus: u32) -> Result<DomId> {
        let id = DomId(self.alloc_domid());

        self.clock.advance(self.costs.domain_create_base);
        self.clock
            .advance(self.costs.vcpu_init.saturating_mul(vcpus as u64));

        // Three special pages live past the RAM pages: start_info, the
        // Xenstore ring and the console ring. Dom0 gets none.
        let special = if id.is_dom0() { 0 } else { 3 };
        let p2m_size = mem_pages + special;
        self.clock
            .advance(self.costs.mem_alloc_per_page.saturating_mul(p2m_size));

        let p2m_slots: Vec<Option<Mfn>> = match self.frames.alloc_many(FrameOwner::Dom(id), p2m_size)
        {
            Ok(v) => v.into_iter().map(Some).collect(),
            Err(e) => {
                self.release_domid(id.0);
                return Err(e);
            }
        };

        // Page-table frames and the frames storing the p2m itself are
        // auxiliary private memory.
        let aux_count = if p2m_size == 0 {
            0
        } else {
            Domain::pt_frames_needed(p2m_size) + Domain::p2m_frames_needed(p2m_size)
        };
        let aux_frames = match self.frames.alloc_many(FrameOwner::Dom(id), aux_count) {
            Ok(v) => v,
            Err(e) => {
                // Roll back the p2m allocation so a failed creation does
                // not leak frames (nor the reserved domain id).
                for mfn in p2m_slots.into_iter().flatten() {
                    let _ = self.frames.free(mfn, FrameOwner::Dom(id));
                }
                self.release_domid(id.0);
                return Err(e);
            }
        };
        self.clock
            .advance(self.costs.mem_alloc_per_page.saturating_mul(aux_count));

        let start_info_pfn = Pfn(mem_pages);
        let xenstore_pfn = Pfn(mem_pages + 1);
        let console_pfn = Pfn(mem_pages + 2);
        let mut private_pfns = BTreeMap::new();
        if special != 0 {
            private_pfns.insert(start_info_pfn, PrivatePolicy::Rewrite);
            private_pfns.insert(xenstore_pfn, PrivatePolicy::Fresh);
            private_pfns.insert(console_pfn, PrivatePolicy::Fresh);
        }

        let dom = Domain {
            id,
            name: name.to_string(),
            parent: None,
            state: DomainState::Created,
            vcpus: (0..vcpus).map(Vcpu::new).collect(),
            p2m: P2m::from_vec(p2m_slots),
            aux_frames,
            private_pfns,
            idc_pfns: Default::default(),
            start_info_pfn,
            xenstore_pfn,
            console_pfn,
            clone_policy: ClonePolicy::default(),
            clones_created: 0,
            children: Vec::new(),
            pending_stage2: 0,
            grants: Default::default(),
            evtchn: Default::default(),
            checkpoint: None,
        };
        self.domains.insert(id.0, dom);
        // Every freshly created domain roots a new clone family in the
        // provenance registry (clone children join via `insert_domain`).
        self.trace.family_root_created(id, name);
        Ok(id)
    }

    /// Creates a domain with `mem_mib` MiB of RAM. Xen enforces a minimum
    /// domain size of 4 MiB (§6.2), which we honor here.
    pub fn create_domain(&mut self, name: &str, mem_mib: u64, vcpus: u32) -> Result<DomId> {
        let mem_mib = mem_mib.max(4);
        self.create_domain_inner(name, mib_to_pages(mem_mib), vcpus.max(1))
    }

    /// Returns an immutable reference to a domain.
    pub fn domain(&self, id: DomId) -> Result<&Domain> {
        self.domains.get(&id.0).ok_or(HvError::NoSuchDomain(id))
    }

    /// Returns a mutable reference to a domain.
    pub fn domain_mut(&mut self, id: DomId) -> Result<&mut Domain> {
        self.domains.get_mut(&id.0).ok_or(HvError::NoSuchDomain(id))
    }

    /// Whether the domain exists.
    pub fn domain_exists(&self, id: DomId) -> bool {
        self.domains.contains_key(&id.0)
    }

    /// Iterates over all live domains in id order.
    pub fn domains(&self) -> impl Iterator<Item = &Domain> {
        self.domains.values()
    }

    /// Number of live domains (including Dom0).
    pub fn domain_count(&self) -> usize {
        self.domains.len()
    }

    /// Sets the per-domain cloning policy (domctl interface, §5.1).
    pub fn set_clone_policy(&mut self, id: DomId, policy: ClonePolicy) -> Result<()> {
        self.domain_mut(id)?.clone_policy = policy;
        Ok(())
    }

    /// Enables or disables cloning globally (controlled by `xencloned`).
    pub fn set_cloning_enabled(&mut self, enabled: bool) {
        self.cloning_enabled = enabled;
    }

    /// Whether cloning is enabled globally.
    pub fn cloning_enabled(&self) -> bool {
        self.cloning_enabled
    }

    /// Transitions a domain to `Running`.
    pub fn unpause(&mut self, id: DomId) -> Result<()> {
        let d = self.domain_mut(id)?;
        if d.state == DomainState::Dying {
            return Err(HvError::BadDomainState(id));
        }
        d.state = DomainState::Running;
        Ok(())
    }

    /// Pauses a domain.
    pub fn pause(&mut self, id: DomId) -> Result<()> {
        let d = self.domain_mut(id)?;
        if d.state == DomainState::Dying {
            return Err(HvError::BadDomainState(id));
        }
        d.state = DomainState::Paused;
        Ok(())
    }

    /// Destroys a domain, releasing all its memory (exclusive frames are
    /// freed; COW sharers are dropped).
    pub fn destroy_domain(&mut self, id: DomId) -> Result<()> {
        if id.is_dom0() {
            return Err(HvError::Denied);
        }
        let dom = self
            .domains
            .remove(&id.0)
            .ok_or(HvError::NoSuchDomain(id))?;
        let mut freed = 0u64;
        // An armed checkpoint's dirty_cow journal holds one dom_cow
        // reference per recorded pre-fault frame (so the reset target
        // survives until reset); those references die with the domain.
        if let Some(cp) = &dom.checkpoint {
            self.release_checkpoint_refs(cp)?;
        }
        for mfn in dom.p2m.iter().flatten() {
            match self.frames.inspect(mfn)?.owner() {
                FrameOwner::Dom(d) if d == id => {
                    self.frames.free(mfn, FrameOwner::Dom(id))?;
                    freed += 1;
                }
                FrameOwner::Cow => {
                    self.frames.unshare_drop(mfn)?;
                    freed += 1;
                }
                // A frame in our p2m owned by someone else is a mapped
                // grant; the owner keeps it.
                _ => {}
            }
        }
        for mfn in &dom.aux_frames {
            self.frames.free(*mfn, FrameOwner::Dom(id))?;
            freed += 1;
        }
        self.clock
            .advance(self.costs.mem_free_per_page.saturating_mul(freed));

        // Unlink from the family tree and the CHILD fan-out registry —
        // the reverse indices make both O(the domain's own bindings),
        // not O(every binding ever registered).
        if let Some(parent) = dom.parent {
            if let Some(p) = self.domains.get_mut(&parent.0) {
                p.children.retain(|c| *c != id);
            }
        }
        if let Some(memberships) = self.binding_memberships.remove(&id.0) {
            for (key, seq) in memberships {
                if let Some(targets) = self.child_bindings.get_mut(&key) {
                    targets.remove(&seq);
                }
            }
        }
        if let Some(ports) = self.owned_binding_ports.remove(&id.0) {
            for port in ports {
                self.child_bindings.remove(&(id.0, port));
            }
        }

        // Sweep the tables that actually reference the dead domain:
        // close interdomain channels whose remote end just died and
        // revoke grants naming it as grantee, so no live table keeps a
        // binding to a dead domain (the liveness invariants the state
        // auditor enforces). The referrer index names exactly the
        // holders, so this is O(references to the dead domain) instead
        // of a walk over every live domain; holders are visited in
        // ascending id order, the same order the old full walk used.
        if let Some(holders) = self.peer_refs.remove(&id.0) {
            for (holder, refs) in holders {
                let Some(peer) = self.domains.get_mut(&holder) else {
                    debug_assert!(false, "referrer index names dead holder {holder}");
                    continue;
                };
                let dropped =
                    (peer.evtchn.close_peer(id) + peer.grants.revoke_grantee(id)) as u64;
                debug_assert_eq!(
                    dropped, refs,
                    "referrer index out of sync: dom {holder} held {dropped} refs to dead {}, index said {refs}",
                    id.0
                );
            }
        }
        // The dead domain's own references to others die with its
        // tables; drop them from the referrer index so destroyed ids
        // never leave stale holder entries behind (domids are reused).
        for (peer, n) in dom
            .evtchn
            .peer_counts()
            .chain(dom.grants.grantee_counts())
        {
            if !peer.is_real() || peer == id {
                continue;
            }
            if let Some(holders) = self.peer_refs.get_mut(&peer.0) {
                if let Some(count) = holders.get_mut(&id.0) {
                    *count = count.saturating_sub(n);
                    if *count == 0 {
                        holders.remove(&id.0);
                    }
                }
                if holders.is_empty() {
                    self.peer_refs.remove(&peer.0);
                }
            }
        }
        // Debug builds re-check what the release path now skips: no
        // survivor's table may still name the dead domain. This restores
        // the old O(live domains) sweep as a pure assertion.
        #[cfg(debug_assertions)]
        for peer in self.domains.values() {
            debug_assert!(
                !peer.evtchn.iter_active().any(|(_, c)| matches!(
                    c,
                    Channel::Interdomain { remote_dom, .. } if *remote_dom == id
                )),
                "destroy left dom {}'s channel table naming dead {}",
                peer.id.0,
                id.0
            );
            debug_assert!(
                !peer.grants.iter_active().any(|(_, e)| matches!(
                    e,
                    grant::GrantEntry::Access { grantee, .. } if *grantee == id
                )),
                "destroy left dom {}'s grant table naming dead {}",
                peer.id.0,
                id.0
            );
        }
        // Orphaned pending notifications for the dead domain are dropped,
        // and the id goes back to the allocator for deterministic reuse.
        self.pending_events.retain(|e| e.dom != id);
        self.release_domid(id.0);
        self.trace.family_destroyed(id);
        Ok(())
    }

    /// Returns `true` if `child` descends from `ancestor` in the clone
    /// family tree.
    pub fn is_descendant(&self, child: DomId, ancestor: DomId) -> bool {
        let mut cur = child;
        while let Ok(d) = self.domain(cur) {
            match d.parent {
                Some(p) if p == ancestor => return true,
                Some(p) => cur = p,
                None => return false,
            }
        }
        false
    }

    /// Returns `true` if the two domains belong to the same clone family
    /// (common ancestor, or one is the ancestor of the other — §4).
    pub fn same_family(&self, a: DomId, b: DomId) -> bool {
        if a == b {
            return true;
        }
        let root = |mut d: DomId| {
            while let Ok(dom) = self.domain(d) {
                match dom.parent {
                    Some(p) => d = p,
                    None => break,
                }
            }
            d
        };
        root(a) == root(b)
    }

    // ------------------------------------------------------------------
    // Memory access
    // ------------------------------------------------------------------

    fn resolve_write(&mut self, dom: DomId, pfn: Pfn) -> Result<Mfn> {
        let mfn = self
            .domain(dom)?
            .lookup(pfn)
            .ok_or(HvError::NotMapped(dom, pfn))?;
        match self.frames.inspect(mfn)?.owner() {
            FrameOwner::Dom(d) if d == dom => {
                self.journal_private_write(dom, pfn, mfn)?;
                Ok(mfn)
            }
            // Writable-shared (IDC) pages never fault.
            FrameOwner::Cow if self.frames.inspect(mfn)?.writable() => Ok(mfn),
            FrameOwner::Cow => match self.frames.cow_fault(mfn, dom)? {
                CowResolution::Copied(copy) => {
                    self.clock.advance(self.costs.cow_fault_copy);
                    self.trace.count_dom("hv.cow_fault.copy", dom, 1);
                    self.domain_mut(dom)?.p2m.set(pfn.0 as usize, Some(copy));
                    self.journal_cow_copy(dom, pfn, mfn)?;
                    Ok(copy)
                }
                CowResolution::Transferred => {
                    self.clock.advance(self.costs.cow_fault_transfer);
                    self.trace.count_dom("hv.cow_fault.transfer", dom, 1);
                    // Only read-only shared pages reach the write-fault
                    // path (the IDC arm above catches writable ones).
                    self.journal_transfer_fault(dom, pfn, mfn, false)?;
                    Ok(mfn)
                }
            },
            _ => Err(HvError::BadOwner(mfn)),
        }
    }

    /// Journals a COW-copy fault while a checkpoint is armed: records
    /// the pre-fault shared frame and takes one `dom_cow` reference on
    /// it so the reset target stays alive even if every other sharer
    /// vanishes; `clone_reset` hands the reference back to the p2m on
    /// the re-point.
    fn journal_cow_copy(&mut self, dom: DomId, pfn: Pfn, orig: Mfn) -> Result<()> {
        let fresh_entry = match self.domain_mut(dom)?.checkpoint.as_mut() {
            Some(cp) if !cp.dirty_cow.contains_key(&pfn) => {
                cp.dirty_cow.insert(pfn, orig);
                true
            }
            _ => false,
        };
        if fresh_entry {
            self.frames.reshare(orig, 1)?;
        }
        Ok(())
    }

    /// Releases the keep-alive references held by a checkpoint's
    /// dirty_cow journal (on disarm paths that will never reset:
    /// re-checkpoint, clone of a checkpointed parent, destroy). Pure
    /// bookkeeping — no virtual time is charged.
    fn release_checkpoint_refs(&mut self, cp: &domain::Checkpoint) -> Result<()> {
        for orig in cp.dirty_cow.values() {
            self.frames.unshare_drop(*orig)?;
        }
        Ok(())
    }

    /// Journals the pre-image of a private page on its first write while
    /// a checkpoint is armed: this is what keeps `clone_reset` O(dirty)
    /// instead of snapshotting (and later scanning) every private page.
    /// Pages already covered by the COW journals are skipped — their
    /// reset action (re-point or re-share) discards the current frame
    /// content anyway.
    fn journal_private_write(&mut self, dom: DomId, pfn: Pfn, mfn: Mfn) -> Result<()> {
        let needs = match &self.domain(dom)?.checkpoint {
            Some(cp) => {
                !cp.dirty_private.contains_key(&pfn)
                    && !cp.dirty_cow.contains_key(&pfn)
                    && !cp.dirty_transfer.contains_key(&pfn)
            }
            None => false,
        };
        if needs {
            let content = self.frames.inspect(mfn)?.content().clone();
            let cp = self
                .domain_mut(dom)?
                .checkpoint
                .as_mut()
                .expect("checkpoint checked above");
            cp.dirty_private.insert(pfn, content);
        }
        Ok(())
    }

    /// Journals a last-sharer COW fault (ownership transfer) while a
    /// checkpoint is armed. The transfer leaves the frame's content
    /// untouched, so capturing it right after the fault still records
    /// the checkpoint-time image; reset restores the content and shares
    /// the frame back to `dom_cow` as the single-sharer page it was,
    /// with its pre-fault writability.
    fn journal_transfer_fault(
        &mut self,
        dom: DomId,
        pfn: Pfn,
        mfn: Mfn,
        was_writable: bool,
    ) -> Result<()> {
        let needs = match &self.domain(dom)?.checkpoint {
            Some(cp) => !cp.dirty_transfer.contains_key(&pfn),
            None => false,
        };
        if needs {
            let content = self.frames.inspect(mfn)?.content().clone();
            let cp = self
                .domain_mut(dom)?
                .checkpoint
                .as_mut()
                .expect("checkpoint checked above");
            cp.dirty_transfer.insert(pfn, (content, was_writable));
        }
        Ok(())
    }

    /// Writes guest memory, resolving COW faults like the real fault path.
    pub fn write_page(&mut self, dom: DomId, pfn: Pfn, offset: usize, data: &[u8]) -> Result<()> {
        let mfn = self.resolve_write(dom, pfn)?;
        self.frames.write(mfn, offset, data)
    }

    /// Fills a whole guest page with a pattern (cheap dirtying).
    pub fn fill_page(&mut self, dom: DomId, pfn: Pfn, pattern: u64) -> Result<()> {
        let mfn = self.resolve_write(dom, pfn)?;
        self.frames.fill(mfn, pattern)
    }

    /// Reads guest memory.
    pub fn read_page(&self, dom: DomId, pfn: Pfn, offset: usize, buf: &mut [u8]) -> Result<()> {
        let mfn = self
            .domain(dom)?
            .lookup(pfn)
            .ok_or(HvError::NotMapped(dom, pfn))?;
        self.frames.read(mfn, offset, buf)
    }

    /// Marks a guest pfn as private for cloning purposes (used by device
    /// frontends for ring pages and preallocated RX buffers).
    pub fn register_private_pfn(
        &mut self,
        dom: DomId,
        pfn: Pfn,
        policy: PrivatePolicy,
    ) -> Result<()> {
        let d = self.domain_mut(dom)?;
        if pfn.0 as usize >= d.p2m.len() {
            return Err(HvError::NotMapped(dom, pfn));
        }
        d.private_pfns.insert(pfn, policy);
        Ok(())
    }

    /// Marks a guest pfn as an IDC page: shared *writable* with clones
    /// rather than copied-on-write (§5.2.2).
    pub fn register_idc_pfn(&mut self, dom: DomId, pfn: Pfn) -> Result<()> {
        let d = self.domain_mut(dom)?;
        if pfn.0 as usize >= d.p2m.len() {
            return Err(HvError::NotMapped(dom, pfn));
        }
        d.idc_pfns.insert(pfn);
        Ok(())
    }

    /// Direct frame-table access for device backends and tests.
    pub fn frames(&self) -> &FrameTable {
        &self.frames
    }

    /// Mutable frame-table access (backend data path).
    pub fn frames_mut(&mut self) -> &mut FrameTable {
        &mut self.frames
    }

    /// Frame-table statistics (Fig. 5's "Hyp free" series). O(1): the
    /// owner-class counts are maintained incrementally, so experiments may
    /// sample this per clone without paying a frame-table scan.
    pub fn memory_stats(&self) -> MemoryStats {
        self.frames.stats()
    }

    /// Splits the resident cost of every domain's p2m between the
    /// family templates shared behind `Rc` handles and the private
    /// storage (sole-owner templates and overlay entries). Pointer
    /// identity decides sharing, exactly like `Xenstore::sharing`; the
    /// two fields sum to what per-domain stamped p2m arrays would cost
    /// in template bytes plus the overlay overhead.
    pub fn p2m_sharing(&self) -> p2m::P2mSharing {
        let mut base_uses: HashMap<usize, u32> = HashMap::new();
        for d in self.domains.values() {
            *base_uses.entry(d.p2m.base_addr()).or_default() += 1;
        }
        let mut s = p2m::P2mSharing::default();
        for d in self.domains.values() {
            let base_bytes = d.p2m.base_len() as u64 * p2m::BASE_SLOT_BYTES;
            if base_uses[&d.p2m.base_addr()] > 1 {
                s.shared_bytes += base_bytes;
            } else {
                s.unique_bytes += base_bytes;
            }
            s.unique_bytes += d.p2m.overlay_len() as u64 * p2m::OVERLAY_ENTRY_BYTES;
        }
        s
    }

    /// Per-domain split of [`p2m_sharing`](Self::p2m_sharing): each
    /// domain's contribution to the shared/unique template bytes, in
    /// domain-id order. Summing the rows reproduces the global split,
    /// which is how the family rollups attribute resident p2m bytes to
    /// clone families.
    pub fn p2m_sharing_by_dom(&self) -> Vec<(DomId, p2m::P2mSharing)> {
        let mut base_uses: HashMap<usize, u32> = HashMap::new();
        for d in self.domains.values() {
            *base_uses.entry(d.p2m.base_addr()).or_default() += 1;
        }
        self.domains
            .values()
            .map(|d| {
                let mut s = p2m::P2mSharing::default();
                let base_bytes = d.p2m.base_len() as u64 * p2m::BASE_SLOT_BYTES;
                if base_uses[&d.p2m.base_addr()] > 1 {
                    s.shared_bytes += base_bytes;
                } else {
                    s.unique_bytes += base_bytes;
                }
                s.unique_bytes += d.p2m.overlay_len() as u64 * p2m::OVERLAY_ENTRY_BYTES;
                (d.id, s)
            })
            .collect()
    }

    /// Free guest-pool pages.
    pub fn free_pages(&self) -> u64 {
        self.frames.free_frames()
    }

    // ------------------------------------------------------------------
    // Grants
    // ------------------------------------------------------------------

    /// Creates a grant entry in `dom`'s table allowing `grantee` (possibly
    /// [`DomId::CHILD`]) to map the frame behind `pfn`.
    pub fn grant_access(
        &mut self,
        dom: DomId,
        grantee: DomId,
        pfn: Pfn,
        readonly: bool,
    ) -> Result<GrantRef> {
        let mfn = self
            .domain(dom)?
            .lookup(pfn)
            .ok_or(HvError::NotMapped(dom, pfn))?;
        let gref = self
            .domain_mut(dom)?
            .grants
            .grant_access(grantee, mfn, readonly);
        self.note_peer_ref(grantee, dom);
        Ok(gref)
    }

    /// Maps a grant from `owner`'s table on behalf of `mapper`.
    pub fn map_grant(
        &mut self,
        mapper: DomId,
        owner: DomId,
        gref: GrantRef,
    ) -> Result<(Mfn, bool)> {
        let is_child = self.is_descendant(mapper, owner);
        self.domain_mut(owner)?.grants.map(gref, mapper, is_child)
    }

    /// Releases a grant mapping.
    pub fn unmap_grant(&mut self, owner: DomId, gref: GrantRef) -> Result<()> {
        self.domain_mut(owner)?.grants.unmap(gref)
    }

    // ------------------------------------------------------------------
    // Event channels
    // ------------------------------------------------------------------

    /// Allocates an unbound channel in `dom` that `remote_allowed` may bind.
    pub fn evtchn_alloc_unbound(&mut self, dom: DomId, remote_allowed: DomId) -> Result<Port> {
        Ok(self.domain_mut(dom)?.evtchn.alloc_unbound(remote_allowed))
    }

    /// Wires a fully connected interdomain channel pair between two domains
    /// and returns `(port_in_a, port_in_b)`.
    pub fn evtchn_connect_pair(&mut self, a: DomId, b: DomId) -> Result<(Port, Port)> {
        if !self.domain_exists(b) {
            return Err(HvError::NoSuchDomain(b));
        }
        let port_a = self.domain_mut(a)?.evtchn.bind_interdomain(b, 0);
        let port_b = self.domain_mut(b)?.evtchn.bind_interdomain(a, port_a);
        self.domain_mut(a)?.evtchn.set_remote_port(port_a, port_b)?;
        self.note_peer_ref(b, a);
        self.note_peer_ref(a, b);
        Ok((port_a, port_b))
    }

    /// Allocates an IDC channel in `dom` using the `DOMID_CHILD` wildcard:
    /// the channel is connected to *all future clones* of `dom` (each clone
    /// is implicitly bound to it at creation, §5.2.2). By convention the
    /// child side reuses the same port number.
    pub fn evtchn_alloc_idc(&mut self, dom: DomId) -> Result<Port> {
        let d = self.domain_mut(dom)?;
        let port = d.evtchn.bind_interdomain(DomId::CHILD, 0);
        d.evtchn.set_remote_port(port, port)?;
        Ok(port)
    }

    /// Binds `virq` in `dom`, returning the local port.
    pub fn bind_virq(&mut self, dom: DomId, virq: Virq) -> Result<Port> {
        Ok(self.domain_mut(dom)?.evtchn.bind_virq(virq))
    }

    /// Sends a notification through `port` of `sender`. Parent-side
    /// `DOMID_CHILD` channels fan out to every bound clone (§5.2.2).
    pub fn send_event(&mut self, sender: DomId, port: Port) -> Result<()> {
        let channel = self.domain(sender)?.evtchn.channel(port)?.clone();
        match channel {
            Channel::Interdomain {
                remote_dom,
                remote_port,
            } => {
                self.clock.advance(self.costs.event_delivery);
                if remote_dom == DomId::CHILD {
                    // Registration (seq) order — exactly the bind order.
                    let targets: Vec<(DomId, Port)> = self
                        .child_bindings
                        .get(&(sender.0, port))
                        .map(|m| m.values().copied().collect())
                        .unwrap_or_default();
                    for (child, child_port) in targets {
                        self.deliver(child, child_port);
                    }
                    Ok(())
                } else {
                    if !self.domain_exists(remote_dom) {
                        return Err(HvError::NoSuchDomain(remote_dom));
                    }
                    self.deliver(remote_dom, remote_port);
                    Ok(())
                }
            }
            Channel::Unbound { .. } | Channel::VirqBound(_) | Channel::Free => {
                Err(HvError::BadPort(port))
            }
        }
    }

    fn deliver(&mut self, dom: DomId, port: Port) {
        let Ok(d) = self.domain_mut(dom) else { return };
        let virq = match d.evtchn.channel(port) {
            Ok(Channel::VirqBound(v)) => Some(*v),
            _ => None,
        };
        if d.evtchn.set_pending(port) {
            self.pending_events.push_back(PendingEvent { dom, port, virq });
        }
    }

    /// Raises a virtual interrupt for `dom` (hypervisor-originated).
    pub fn raise_virq(&mut self, dom: DomId, virq: Virq) {
        let Ok(d) = self.domain(dom) else { return };
        if let Some(port) = d.evtchn.virq_port(virq) {
            self.clock.advance(self.costs.event_delivery);
            self.deliver(dom, port);
        }
    }

    /// Drains all pending event notifications for platform dispatch.
    pub fn drain_events(&mut self) -> Vec<PendingEvent> {
        let evts: Vec<_> = self.pending_events.drain(..).collect();
        for e in &evts {
            if let Ok(d) = self.domain_mut(e.dom) {
                d.evtchn.take_pending(e.port);
            }
        }
        evts
    }

    /// Reserves a domain id. The lowest previously-freed id is reused
    /// first (O(log freed), ordered — the id handed out is a pure
    /// function of the create/destroy tape, with no hashing or host
    /// state involved); with nothing to reuse, the next-id counter is
    /// bumped. Both the create path and the cloning path allocate
    /// through here, so ids are never double-assigned.
    pub(crate) fn alloc_domid(&mut self) -> u32 {
        if let Some(id) = self.free_domids.pop_first() {
            return id;
        }
        let id = self.next_domid;
        self.next_domid += 1;
        id
    }

    /// Returns a domain id to the allocator (domain destruction and the
    /// create-rollback path).
    fn release_domid(&mut self, id: u32) {
        debug_assert!(
            !self.domains.contains_key(&id),
            "released domid {id} still has a live domain"
        );
        self.free_domids.insert(id);
    }

    /// Records that `holder`'s tables gained one entry naming `peer` in
    /// the referrer index. Wildcard peers ([`DomId::CHILD`] etc.) and
    /// self references are skipped — neither needs a death sweep.
    fn note_peer_ref(&mut self, peer: DomId, holder: DomId) {
        if peer.is_real() && peer != holder {
            *self
                .peer_refs
                .entry(peer.0)
                .or_default()
                .entry(holder.0)
                .or_default() += 1;
        }
    }

    /// Inserts a fully built domain (cloning path), joining it to its
    /// parent's clone family in the provenance registry. The child's
    /// tables were stamped while detached, so its references to real
    /// peers (the parent behind re-wired IDC ports, Dom0 behind copied
    /// console/Xenstore channels) are registered here, from the tables'
    /// own reverse indices — O(the child's table), not O(domains).
    pub(crate) fn insert_domain(&mut self, d: Domain) {
        self.trace.family_cloned(d.id, d.parent);
        let holder = d.id;
        for (peer, n) in d.evtchn.peer_counts().chain(d.grants.grantee_counts()) {
            if peer.is_real() && peer != holder {
                *self
                    .peer_refs
                    .entry(peer.0)
                    .or_default()
                    .entry(holder.0)
                    .or_default() += n;
            }
        }
        self.domains.insert(d.id.0, d);
    }

    /// Registers a child binding for a parent `DOMID_CHILD` channel
    /// (performed implicitly during cloning).
    pub(crate) fn bind_child_channel(
        &mut self,
        parent: DomId,
        parent_port: Port,
        child: DomId,
        child_port: Port,
    ) {
        let seq = self.binding_seq;
        self.binding_seq += 1;
        let key = (parent.0, parent_port);
        self.child_bindings
            .entry(key)
            .or_default()
            .insert(seq, (child, child_port));
        self.binding_memberships
            .entry(child.0)
            .or_default()
            .push((key, seq));
        self.owned_binding_ports
            .entry(parent.0)
            .or_default()
            .insert(parent_port);
    }

    /// Read-only view of the `DOMID_CHILD` fan-out registry:
    /// `((parent, parent_port), [(child, child_port)])` in registration
    /// order. The state auditor cross-checks these against live domains
    /// and their channel tables.
    pub fn child_bindings(
        &self,
    ) -> impl Iterator<Item = ((u32, Port), Vec<(DomId, Port)>)> + '_ {
        self.child_bindings
            .iter()
            .map(|(k, m)| (*k, m.values().copied().collect()))
    }

    /// Cross-checks every scan-replacing index against the ground truth
    /// it replaced, returning one human-readable detail per divergence
    /// (empty when consistent). Checked per table: the event-channel
    /// peer index and grant grantee index versus full table scans; and
    /// globally: the referrer index versus a recount over every live
    /// domain's tables, and the fan-out registry's reverse indices
    /// versus the registry itself. The state auditor surfaces these as
    /// its index-consistency invariant; the property tests drive random
    /// lifecycle tapes through it.
    pub fn audit_ref_indices(&self) -> Vec<String> {
        let mut bad = Vec::new();
        let mut expect: BTreeMap<u32, BTreeMap<u32, u64>> = BTreeMap::new();
        for d in self.domains.values() {
            let mut chan_scan: BTreeMap<DomId, u64> = BTreeMap::new();
            for (_, c) in d.evtchn.iter_active() {
                if let Channel::Interdomain { remote_dom, .. } = c {
                    *chan_scan.entry(*remote_dom).or_default() += 1;
                }
            }
            let chan_idx: BTreeMap<DomId, u64> = d.evtchn.peer_counts().collect();
            if chan_idx != chan_scan {
                bad.push(format!(
                    "dom {}: evtchn peer index {chan_idx:?} != table scan {chan_scan:?}",
                    d.id.0
                ));
            }
            let mut grant_scan: BTreeMap<DomId, u64> = BTreeMap::new();
            for (_, e) in d.grants.iter_active() {
                if let grant::GrantEntry::Access { grantee, .. } = e {
                    *grant_scan.entry(*grantee).or_default() += 1;
                }
            }
            let grant_idx: BTreeMap<DomId, u64> = d.grants.grantee_counts().collect();
            if grant_idx != grant_scan {
                bad.push(format!(
                    "dom {}: grant grantee index {grant_idx:?} != table scan {grant_scan:?}",
                    d.id.0
                ));
            }
            for (peer, n) in chan_scan.into_iter().chain(grant_scan) {
                if peer.is_real() && peer != d.id {
                    *expect.entry(peer.0).or_default().entry(d.id.0).or_default() += n;
                }
            }
        }
        let actual: BTreeMap<u32, BTreeMap<u32, u64>> = self
            .peer_refs
            .iter()
            .map(|(k, v)| (*k, v.clone()))
            .collect();
        if actual != expect {
            bad.push(format!(
                "referrer index {actual:?} != recount over live tables {expect:?}"
            ));
        }
        // Fan-out registry reverse indices: every registry entry must be
        // indexed under its child and its owner port, and vice versa.
        let mut expect_members: BTreeMap<u32, BTreeSet<((u32, Port), u64)>> = BTreeMap::new();
        let mut expect_owned: BTreeMap<u32, BTreeSet<Port>> = BTreeMap::new();
        for (key, targets) in &self.child_bindings {
            expect_owned.entry(key.0).or_default().insert(key.1);
            for (seq, (child, _)) in targets {
                expect_members.entry(child.0).or_default().insert((*key, *seq));
            }
        }
        for (child, entries) in &self.binding_memberships {
            for entry in entries {
                // Stale memberships to registry keys removed by a
                // parent's destruction (or to seqs already unlinked)
                // are tolerated — they are no-ops on the next unlink.
                let live = self
                    .child_bindings
                    .get(&entry.0)
                    .is_some_and(|m| m.contains_key(&entry.1));
                if live && !expect_members.get(child).is_some_and(|s| s.contains(entry)) {
                    bad.push(format!(
                        "binding membership {entry:?} of child {child} not in the registry"
                    ));
                }
            }
        }
        for (child, entries) in expect_members {
            for entry in entries {
                let indexed = self
                    .binding_memberships
                    .get(&child)
                    .is_some_and(|v| v.contains(&entry));
                if !indexed {
                    bad.push(format!(
                        "registry binding {entry:?} of child {child} missing from the membership index"
                    ));
                }
            }
        }
        for (owner, ports) in expect_owned {
            for port in ports {
                let indexed = self
                    .owned_binding_ports
                    .get(&owner)
                    .is_some_and(|s| s.contains(&port));
                if !indexed {
                    bad.push(format!(
                        "registry key ({owner}, {port}) missing from the owned-port index"
                    ));
                }
            }
        }
        bad
    }

    /// Test-only: drifts the referrer index for (`peer`, `holder`) by
    /// `delta` without touching any channel or grant table, so the
    /// index-consistency audit can prove it detects divergence from the
    /// scans the index replaced. A zero resulting count removes the
    /// entry, mirroring the maintenance paths.
    pub fn corrupt_peer_ref_for_test(&mut self, peer: DomId, holder: DomId, delta: i64) {
        let holders = self.peer_refs.entry(peer.0).or_default();
        let count = holders.entry(holder.0).or_default();
        *count = count.saturating_add_signed(delta);
        if *count == 0 {
            holders.remove(&holder.0);
        }
        if self.peer_refs.get(&peer.0).is_some_and(|h| h.is_empty()) {
            self.peer_refs.remove(&peer.0);
        }
    }

    /// The clone notification ring (consumed by `xencloned`).
    pub fn clone_ring_pop(&mut self) -> Option<notify::CloneNotification> {
        self.clone_ring.pop()
    }

    /// Number of queued clone notifications.
    pub fn clone_ring_len(&self) -> usize {
        self.clone_ring.len()
    }

    /// Read-only view of the queued clone notifications, oldest first
    /// (state-auditor use).
    pub fn clone_ring_pending(&self) -> impl Iterator<Item = &notify::CloneNotification> {
        self.clone_ring.pending()
    }

    pub(crate) fn clone_ring(&mut self) -> &mut NotificationRing {
        &mut self.clone_ring
    }

    // ------------------------------------------------------------------
    // Save / restore support
    // ------------------------------------------------------------------

    /// Snapshots a domain's memory for `xl save`.
    pub fn snapshot_memory(&self, dom: DomId) -> Result<MemoryImage> {
        let d = self.domain(dom)?;
        let mut pages = Vec::with_capacity(d.p2m.len());
        for (pfn, mfn) in d.p2m.iter_mapped() {
            pages.push((pfn, self.frames.inspect(mfn)?.content().clone()));
        }
        Ok(MemoryImage {
            pages,
            p2m_size: d.p2m.len() as u64,
        })
    }

    /// Loads a memory image into a freshly created domain (restore path).
    pub fn load_image(&mut self, dom: DomId, image: &MemoryImage) -> Result<()> {
        for (pfn, content) in &image.pages {
            let mfn = self
                .domain(dom)?
                .lookup(*pfn)
                .ok_or(HvError::NotMapped(dom, *pfn))?;
            self.frames.set_content(mfn, content.clone())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hv() -> Hypervisor {
        Hypervisor::new(
            Clock::new(),
            Rc::new(CostModel::free()),
            &MachineConfig {
                guest_pool_mib: 64,
                cores: 4,
                notification_ring_capacity: 8,
            },
        )
    }

    #[test]
    fn dom0_exists_at_boot() {
        let hv = hv();
        assert!(hv.domain_exists(DomId::DOM0));
        assert_eq!(hv.domain(DomId::DOM0).unwrap().name, "Domain-0");
    }

    #[test]
    fn create_and_destroy_domain_roundtrips_memory() {
        let mut hv = hv();
        let before = hv.free_pages();
        let d = hv.create_domain("guest", 4, 1).unwrap();
        assert!(hv.free_pages() < before);
        hv.destroy_domain(d).unwrap();
        assert_eq!(hv.free_pages(), before);
    }

    #[test]
    fn minimum_domain_size_is_4_mib() {
        let mut hv = hv();
        let d = hv.create_domain("tiny", 1, 1).unwrap();
        // 4 MiB = 1024 pages + 3 special pages.
        assert_eq!(hv.domain(d).unwrap().mapped_pages(), 1027);
    }

    #[test]
    fn write_read_roundtrip() {
        let mut hv = hv();
        let d = hv.create_domain("guest", 4, 1).unwrap();
        hv.write_page(d, Pfn(10), 100, b"nephele").unwrap();
        let mut buf = [0u8; 7];
        hv.read_page(d, Pfn(10), 100, &mut buf).unwrap();
        assert_eq!(&buf, b"nephele");
    }

    #[test]
    fn unmapped_pfn_rejected() {
        let mut hv = hv();
        let d = hv.create_domain("guest", 4, 1).unwrap();
        assert!(matches!(
            hv.write_page(d, Pfn(999_999), 0, b"x"),
            Err(HvError::NotMapped(..))
        ));
    }

    #[test]
    fn grant_map_respects_family() {
        let mut hv = hv();
        let a = hv.create_domain("a", 4, 1).unwrap();
        let b = hv.create_domain("b", 4, 1).unwrap();
        let g = hv.grant_access(a, DomId::CHILD, Pfn(1), false).unwrap();
        // `b` is unrelated: denied.
        assert!(hv.map_grant(b, a, g).is_err());
        // Dom0 explicitly granted: allowed.
        let g0 = hv.grant_access(a, DomId::DOM0, Pfn(2), true).unwrap();
        let (_, ro) = hv.map_grant(DomId::DOM0, a, g0).unwrap();
        assert!(ro);
    }

    #[test]
    fn event_pair_delivery() {
        let mut hv = hv();
        let a = hv.create_domain("a", 4, 1).unwrap();
        let (pa, pb) = hv.evtchn_connect_pair(a, DomId::DOM0).unwrap();
        hv.send_event(a, pa).unwrap();
        let evts = hv.drain_events();
        assert_eq!(evts.len(), 1);
        assert_eq!(evts[0].dom, DomId::DOM0);
        assert_eq!(evts[0].port, pb);
        // And the reverse direction.
        hv.send_event(DomId::DOM0, pb).unwrap();
        let evts = hv.drain_events();
        assert_eq!(evts[0].dom, a);
        assert_eq!(evts[0].port, pa);
    }

    #[test]
    fn virq_roundtrip() {
        let mut hv = hv();
        let port = hv.bind_virq(DomId::DOM0, Virq::Cloned).unwrap();
        hv.raise_virq(DomId::DOM0, Virq::Cloned);
        let evts = hv.drain_events();
        assert_eq!(evts.len(), 1);
        assert_eq!(evts[0].port, port);
        assert_eq!(evts[0].virq, Some(Virq::Cloned));
    }

    #[test]
    fn pending_events_coalesce() {
        let mut hv = hv();
        hv.bind_virq(DomId::DOM0, Virq::Cloned).unwrap();
        hv.raise_virq(DomId::DOM0, Virq::Cloned);
        hv.raise_virq(DomId::DOM0, Virq::Cloned);
        assert_eq!(hv.drain_events().len(), 1, "second raise coalesces");
        hv.raise_virq(DomId::DOM0, Virq::Cloned);
        assert_eq!(hv.drain_events().len(), 1, "re-raised after drain");
    }

    #[test]
    fn snapshot_and_restore_memory() {
        let mut hv = hv();
        let a = hv.create_domain("a", 4, 1).unwrap();
        hv.write_page(a, Pfn(5), 0, b"state").unwrap();
        let img = hv.snapshot_memory(a).unwrap();
        assert_eq!(img.p2m_size, 1027);

        let b = hv.create_domain("b", 4, 1).unwrap();
        hv.load_image(b, &img).unwrap();
        let mut buf = [0u8; 5];
        hv.read_page(b, Pfn(5), 0, &mut buf).unwrap();
        assert_eq!(&buf, b"state");
    }

    #[test]
    fn domid_sequence_is_pinned_across_create_destroy_create() {
        // The allocator contract the rest of the stack depends on:
        // lowest freed id first, then the counter — a pure function of
        // the create/destroy tape. This tape's expected ids are pinned;
        // any change to the reuse policy must update them consciously.
        let mut hv = hv();
        let a = hv.create_domain("a", 4, 1).unwrap();
        let b = hv.create_domain("b", 4, 1).unwrap();
        let c = hv.create_domain("c", 4, 1).unwrap();
        assert_eq!((a.0, b.0, c.0), (1, 2, 3), "dom0 holds id 0");

        // Destroy the middle and first domains; the lowest id wins reuse.
        hv.destroy_domain(b).unwrap();
        hv.destroy_domain(a).unwrap();
        let d = hv.create_domain("d", 4, 1).unwrap();
        let e = hv.create_domain("e", 4, 1).unwrap();
        let f = hv.create_domain("f", 4, 1).unwrap();
        assert_eq!((d.0, e.0, f.0), (1, 2, 4), "reuse 1 then 2, then bump");

        // Destroying the highest id and re-creating reuses it too.
        hv.destroy_domain(f).unwrap();
        let g = hv.create_domain("g", 4, 1).unwrap();
        assert_eq!(g.0, 4);

        // A failed creation must not consume an id.
        hv.destroy_domain(g).unwrap();
        assert!(hv.create_domain("huge", 1 << 20, 1).is_err());
        let h = hv.create_domain("h", 4, 1).unwrap();
        assert_eq!(h.0, 4);
    }

    #[test]
    fn destroy_dom0_denied() {
        let mut hv = hv();
        assert_eq!(hv.destroy_domain(DomId::DOM0), Err(HvError::Denied));
    }

    #[test]
    fn failed_creation_rolls_back() {
        let mut hv = Hypervisor::new(
            Clock::new(),
            Rc::new(CostModel::free()),
            &MachineConfig {
                guest_pool_mib: 4,
                cores: 1,
                notification_ring_capacity: 8,
            },
        );
        let before = hv.free_pages();
        // 4 MiB pool cannot hold a 4 MiB guest plus its aux frames.
        assert!(hv.create_domain("big", 4, 1).is_err());
        assert_eq!(hv.free_pages(), before, "no leaked frames");
    }
}

//! Grant tables: Xen's mechanism for sharing memory between domains.
//!
//! A domain fills entries in its grant table to permit another domain to map
//! one of its frames. Nephele extends the interface with the `DOMID_CHILD`
//! wildcard ([`DomId::CHILD`]): a grant whose grantee is `DOMID_CHILD` can be
//! mapped by *any clone* of the granting domain, because the grant can be
//! established before any clone exists (§5.1). On cloning, the child is
//! implicitly allowed to use all of the parent's IDC grants.

use std::collections::{BTreeMap, BTreeSet};

use sim_core::{DomId, Mfn};

use crate::error::{HvError, Result};

/// A grant reference: an index into the granting domain's table.
pub type GrantRef = u32;

/// One grant-table entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GrantEntry {
    /// Unused slot.
    Unused,
    /// Permission for `grantee` to map `mfn`.
    Access {
        /// The domain allowed to map (may be [`DomId::CHILD`]).
        grantee: DomId,
        /// The granted machine frame.
        mfn: Mfn,
        /// Whether the mapping must be read-only.
        readonly: bool,
        /// Number of active mappings through this entry.
        mapped: u32,
    },
}

/// A per-domain grant table.
#[derive(Debug, Clone, Default)]
pub struct GrantTable {
    entries: Vec<GrantEntry>,
    /// Reverse index: grantee domain → references granting to it.
    /// Maintained on grant/revoke so [`GrantTable::revoke_grantee`]
    /// costs O(matching grants), not O(table) — Dom0's table grows with
    /// every live domain, which made grantee teardown O(live domains).
    grantees: BTreeMap<DomId, BTreeSet<GrantRef>>,
}

impl GrantTable {
    /// Creates an empty grant table.
    pub fn new() -> Self {
        GrantTable::default()
    }

    /// Grants `grantee` access to `mfn`, returning the grant reference.
    pub fn grant_access(&mut self, grantee: DomId, mfn: Mfn, readonly: bool) -> GrantRef {
        let entry = GrantEntry::Access {
            grantee,
            mfn,
            readonly,
            mapped: 0,
        };
        let gref = if let Some(idx) = self
            .entries
            .iter()
            .position(|e| matches!(e, GrantEntry::Unused))
        {
            self.entries[idx] = entry;
            idx as GrantRef
        } else {
            self.entries.push(entry);
            (self.entries.len() - 1) as GrantRef
        };
        self.grantees.entry(grantee).or_default().insert(gref);
        gref
    }

    /// Removes `gref` from the grantee index. Must run before the entry
    /// is overwritten.
    fn index_remove(&mut self, gref: GrantRef) {
        if let Some(GrantEntry::Access { grantee, .. }) = self.entries.get(gref as usize) {
            let g = *grantee;
            if let Some(refs) = self.grantees.get_mut(&g) {
                refs.remove(&gref);
                if refs.is_empty() {
                    self.grantees.remove(&g);
                }
            }
        }
    }

    /// Revokes a grant. Fails if mappings are still active.
    pub fn end_access(&mut self, gref: GrantRef) -> Result<()> {
        match self.entries.get(gref as usize) {
            Some(GrantEntry::Access { mapped, .. }) if *mapped > 0 => {
                Err(HvError::BadGrant(gref))
            }
            Some(GrantEntry::Access { .. }) => {
                self.index_remove(gref);
                self.entries[gref as usize] = GrantEntry::Unused;
                Ok(())
            }
            _ => Err(HvError::BadGrant(gref)),
        }
    }

    /// Validates that `mapper` may map through `gref`. `mapper_is_child`
    /// states whether the mapper is a descendant of the granting domain
    /// (resolved by the hypervisor, which knows the family tree). Returns
    /// the frame and read-only flag and records the mapping.
    pub fn map(
        &mut self,
        gref: GrantRef,
        mapper: DomId,
        mapper_is_child: bool,
    ) -> Result<(Mfn, bool)> {
        match self.entries.get_mut(gref as usize) {
            Some(GrantEntry::Access {
                grantee,
                mfn,
                readonly,
                mapped,
            }) => {
                let allowed = *grantee == mapper || (*grantee == DomId::CHILD && mapper_is_child);
                if !allowed {
                    return Err(HvError::GrantDenied(gref));
                }
                *mapped += 1;
                Ok((*mfn, *readonly))
            }
            _ => Err(HvError::BadGrant(gref)),
        }
    }

    /// Releases one mapping previously taken with [`GrantTable::map`].
    pub fn unmap(&mut self, gref: GrantRef) -> Result<()> {
        match self.entries.get_mut(gref as usize) {
            Some(GrantEntry::Access { mapped, .. }) if *mapped > 0 => {
                *mapped -= 1;
                Ok(())
            }
            _ => Err(HvError::BadGrant(gref)),
        }
    }

    /// Returns the entry behind a reference, if any.
    pub fn entry(&self, gref: GrantRef) -> Option<&GrantEntry> {
        self.entries.get(gref as usize)
    }

    /// Number of active (non-unused) entries.
    pub fn active_entries(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| !matches!(e, GrantEntry::Unused))
            .count()
    }

    /// Iterates over `(gref, entry)` pairs of active entries.
    pub fn iter_active(&self) -> impl Iterator<Item = (GrantRef, &GrantEntry)> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| !matches!(e, GrantEntry::Unused))
            .map(|(i, e)| (i as GrantRef, e))
    }

    /// Revokes every entry granting to `grantee`, regardless of active
    /// mapping counts, and returns how many were dropped. Used when the
    /// grantee domain is destroyed: its mappings die with it, so the
    /// entries must not keep naming a dead domain.
    ///
    /// Cost: O(grants actually naming `grantee`) via the reverse index —
    /// independent of table size, hence of live-domain count.
    pub fn revoke_grantee(&mut self, grantee: DomId) -> usize {
        let Some(refs) = self.grantees.remove(&grantee) else {
            return 0;
        };
        let dropped = refs.len();
        for gref in refs {
            debug_assert!(
                matches!(
                    self.entries.get(gref as usize),
                    Some(GrantEntry::Access { grantee: g, .. }) if *g == grantee
                ),
                "grantee index out of sync with grant table at ref {gref}"
            );
            self.entries[gref as usize] = GrantEntry::Unused;
        }
        debug_assert!(
            !self
                .entries
                .iter()
                .any(|e| matches!(e, GrantEntry::Access { grantee: g, .. } if *g == grantee)),
            "revoke_grantee left an entry naming the dead grantee"
        );
        dropped
    }

    /// Per-grantee count of active entries naming each domain, read from
    /// the maintained reverse index (O(distinct grantees)). Used by the
    /// platform auditor to cross-check the index against a scan.
    pub fn grantee_counts(&self) -> impl Iterator<Item = (DomId, u64)> + '_ {
        self.grantees.iter().map(|(d, refs)| (*d, refs.len() as u64))
    }

    /// Produces the child's grant table at clone time: all entries are
    /// replicated so that established device grants and IDC grants stay
    /// valid in the clone. The caller rewrites frame numbers for private
    /// pages afterwards.
    pub fn clone_for_child(&self) -> GrantTable {
        let mut t = self.clone();
        // Active mapping counts do not transfer: the clone's peers have not
        // mapped anything yet.
        for e in &mut t.entries {
            if let GrantEntry::Access { mapped, .. } = e {
                *mapped = 0;
            }
        }
        t
    }

    /// Rewrites every entry that grants `old` to grant `new` instead (used
    /// when re-pointing a clone's private ring frames).
    pub fn rewrite_frame(&mut self, old: Mfn, new: Mfn) {
        for e in &mut self.entries {
            if let GrantEntry::Access { mfn, .. } = e {
                if *mfn == old {
                    *mfn = new;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const D1: DomId = DomId(1);
    const D2: DomId = DomId(2);

    #[test]
    fn grant_map_unmap() {
        let mut t = GrantTable::new();
        let g = t.grant_access(D2, Mfn(5), false);
        let (mfn, ro) = t.map(g, D2, false).unwrap();
        assert_eq!(mfn, Mfn(5));
        assert!(!ro);
        assert!(t.end_access(g).is_err(), "active mapping blocks revoke");
        t.unmap(g).unwrap();
        t.end_access(g).unwrap();
        assert_eq!(t.active_entries(), 0);
    }

    #[test]
    fn wrong_domain_denied() {
        let mut t = GrantTable::new();
        let g = t.grant_access(D2, Mfn(5), true);
        assert_eq!(t.map(g, D1, false), Err(HvError::GrantDenied(g)));
    }

    #[test]
    fn domid_child_wildcard() {
        let mut t = GrantTable::new();
        let g = t.grant_access(DomId::CHILD, Mfn(9), false);
        // A non-descendant cannot map.
        assert!(t.map(g, D2, false).is_err());
        // A descendant can.
        let (mfn, _) = t.map(g, D2, true).unwrap();
        assert_eq!(mfn, Mfn(9));
    }

    #[test]
    fn slots_are_reused() {
        let mut t = GrantTable::new();
        let a = t.grant_access(D1, Mfn(1), false);
        t.end_access(a).unwrap();
        let b = t.grant_access(D1, Mfn(2), false);
        assert_eq!(a, b, "freed slot should be reused");
    }

    #[test]
    fn grantee_index_tracks_grant_and_revoke() {
        let mut t = GrantTable::new();
        let a = t.grant_access(D1, Mfn(1), false);
        t.grant_access(D1, Mfn(2), false);
        t.grant_access(D2, Mfn(3), false);
        t.end_access(a).unwrap();
        // The freed slot is reused for a different grantee; the index
        // must follow it.
        let b = t.grant_access(D2, Mfn(4), false);
        assert_eq!(a, b);
        assert_eq!(t.revoke_grantee(D1), 1);
        assert_eq!(t.revoke_grantee(D1), 0);
        assert_eq!(t.revoke_grantee(D2), 2);
        assert_eq!(t.active_entries(), 0);
    }

    #[test]
    fn clone_resets_mapping_counts() {
        let mut t = GrantTable::new();
        let g = t.grant_access(DomId::CHILD, Mfn(3), false);
        t.map(g, D2, true).unwrap();
        let c = t.clone_for_child();
        match c.entry(g).unwrap() {
            GrantEntry::Access { mapped, .. } => assert_eq!(*mapped, 0),
            _ => panic!("entry missing in clone"),
        }
    }

    #[test]
    fn rewrite_frame_repoints() {
        let mut t = GrantTable::new();
        let g = t.grant_access(D1, Mfn(3), false);
        t.rewrite_frame(Mfn(3), Mfn(7));
        let (mfn, _) = t.map(g, D1, false).unwrap();
        assert_eq!(mfn, Mfn(7));
    }

    #[test]
    fn bad_refs_rejected() {
        let mut t = GrantTable::new();
        assert!(t.map(42, D1, false).is_err());
        assert!(t.unmap(42).is_err());
        assert!(t.end_access(42).is_err());
    }
}

//! Per-domain state: the simulator's `struct domain`.

use std::collections::BTreeMap;

use sim_core::{DomId, Mfn, Pfn};

use crate::event::EventChannels;
use crate::grant::GrantTable;
use crate::memory::PageContent;
use crate::p2m::{P2m, P2mOverlay};
use crate::vcpu::Vcpu;

/// Lifecycle state of a domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DomainState {
    /// Being constructed by the toolstack.
    Created,
    /// Schedulable.
    Running,
    /// Explicitly paused.
    Paused,
    /// Parent paused while clones complete their second stage (§5: "the
    /// parent domain is paused until the completion of second stage").
    PausedForClone,
    /// Freshly cloned child waiting for second-stage completion.
    PausedAfterClone,
    /// Being torn down.
    Dying,
}

/// What to do with a private page when cloning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrivatePolicy {
    /// Duplicate the parent's contents into the child's fresh frame (e.g.
    /// network rings, whose contents are tied to in-flight guest state).
    Copy,
    /// Give the child a fresh zeroed frame (e.g. the console ring, which is
    /// deliberately not duplicated to keep child output separate, §4.2).
    Fresh,
    /// Duplicate and then rewrite domain-specific references (e.g. the
    /// `start_info` page, which embeds the domain id and private frame
    /// numbers).
    Rewrite,
}

/// Per-domain cloning policy, configured via domctl by the toolstack (§5.1:
/// "a guest can be cloned only if its xl configuration file specifies a
/// non-zero value for the maximum number of clones").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClonePolicy {
    /// Whether cloning is permitted for this domain.
    pub enabled: bool,
    /// Maximum number of clones this domain may create.
    pub max_clones: u32,
    /// Whether children are resumed on second-stage completion or left
    /// paused (§5: "child domains are either resumed or left in paused
    /// state, depending on how they are configured").
    pub resume_children: bool,
}

impl Default for ClonePolicy {
    fn default() -> Self {
        ClonePolicy {
            enabled: false,
            max_clones: 0,
            resume_children: true,
        }
    }
}

/// KFX-style checkpoint used by `clone_cow` / `clone_reset` (§7.2).
///
/// Arming a checkpoint is O(1) in the domain's memory: the p2m layout
/// is captured as a structural [`P2mOverlay`] snapshot, and page
/// contents are journaled lazily by the write paths — `resolve_write`
/// and `clone_cow` record a pre-image the *first* time they touch a
/// page after the checkpoint, so `clone_reset` restores exactly the
/// pages that were actually dirtied (O(dirty), not O(private)).
#[derive(Debug, Clone, Default)]
pub struct Checkpoint {
    /// COW-copy faults taken since the checkpoint: pfn → the shared
    /// frame the p2m pointed at before the fault. The journal holds one
    /// `dom_cow` reference on each recorded frame so the reset target
    /// cannot be freed while the checkpoint is armed; the reference
    /// transfers back to the p2m on reset.
    pub dirty_cow: BTreeMap<Pfn, Mfn>,
    /// Copy-on-first-write pre-images of private pages dirtied since
    /// the checkpoint (replaces the old eager snapshot of *every*
    /// private page).
    pub dirty_private: BTreeMap<Pfn, PageContent>,
    /// Last-sharer COW faults resolved by ownership transfer since the
    /// checkpoint: pfn → the frame's pre-fault content and writability.
    /// Reset restores the content and re-shares the frame to `dom_cow`.
    pub dirty_transfer: BTreeMap<Pfn, (PageContent, bool)>,
    /// Structural snapshot of the p2m overlay at checkpoint time.
    pub overlay: P2mOverlay,
    /// vCPU state snapshot.
    pub vcpus: Vec<Vcpu>,
}

/// The simulator's `struct domain`.
#[derive(Debug, Clone)]
pub struct Domain {
    /// Domain identifier.
    pub id: DomId,
    /// Domain name (managed by the toolstack; `xencloned` generates unique
    /// clone names without the O(n) validation scan).
    pub name: String,
    /// Parent domain for clones.
    pub parent: Option<DomId>,
    /// Lifecycle state.
    pub state: DomainState,
    /// Virtual CPUs.
    pub vcpus: Vec<Vcpu>,
    /// Pseudo-physical → machine mapping: a shared family template plus
    /// this domain's private overlay (see [`crate::p2m`]).
    pub p2m: P2m,
    /// Exclusively owned frames not visible in the p2m: page-table frames
    /// and the frames storing the p2m itself. Always private.
    pub aux_frames: Vec<Mfn>,
    /// Pfns that must not be shared on clone, with their policy.
    pub private_pfns: BTreeMap<Pfn, PrivatePolicy>,
    /// Pfns used for inter-domain communication: shared *writable* with
    /// clones (ownership still moves to `dom_cow`, §5.2.2).
    pub idc_pfns: std::collections::BTreeSet<Pfn>,
    /// The `start_info` pfn (private, rewritten on clone).
    pub start_info_pfn: Pfn,
    /// The Xenstore interface ring pfn (private).
    pub xenstore_pfn: Pfn,
    /// The console ring pfn (private, fresh on clone).
    pub console_pfn: Pfn,
    /// Cloning policy.
    pub clone_policy: ClonePolicy,
    /// Total clones created by this domain so far.
    pub clones_created: u32,
    /// Live children.
    pub children: Vec<DomId>,
    /// Children whose second stage has not completed yet.
    pub pending_stage2: u32,
    /// Grant table.
    pub grants: GrantTable,
    /// Event channels.
    pub evtchn: EventChannels,
    /// Active KFX checkpoint, if any.
    pub checkpoint: Option<Checkpoint>,
}

impl Domain {
    /// Number of populated p2m entries.
    pub fn mapped_pages(&self) -> u64 {
        self.p2m.mapped_pages()
    }

    /// Looks up the machine frame behind a pfn.
    pub fn lookup(&self, pfn: Pfn) -> Option<Mfn> {
        self.p2m.get(pfn.0 as usize)
    }

    /// Returns `true` once the domain may run (not paused/dying).
    pub fn is_runnable(&self) -> bool {
        self.state == DomainState::Running
    }

    /// Page-table frames needed for `pages` mapped pages under 4-level
    /// paging (512 entries per level).
    pub fn pt_frames_needed(pages: u64) -> u64 {
        let l1 = pages.div_ceil(512).max(1);
        let l2 = l1.div_ceil(512).max(1);
        let l3 = l2.div_ceil(512).max(1);
        l1 + l2 + l3 + 1
    }

    /// Frames needed to store the p2m array itself (512 8-byte entries per
    /// frame).
    pub fn p2m_frames_needed(pages: u64) -> u64 {
        pages.div_ceil(512).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pt_frame_math() {
        // 1024 pages: 2 L1 frames + 1 each of L2/L3/L4.
        assert_eq!(Domain::pt_frames_needed(1024), 5);
        // 1 page still needs a full chain.
        assert_eq!(Domain::pt_frames_needed(1), 4);
        // 1 GiB = 262144 pages: 512 L1 + 1 L2 + 1 L3 + 1 L4.
        assert_eq!(Domain::pt_frames_needed(262_144), 515);
    }

    #[test]
    fn p2m_frame_math() {
        assert_eq!(Domain::p2m_frames_needed(1), 1);
        assert_eq!(Domain::p2m_frames_needed(512), 1);
        assert_eq!(Domain::p2m_frames_needed(513), 2);
    }

    #[test]
    fn default_clone_policy_disallows_cloning() {
        let p = ClonePolicy::default();
        assert!(!p.enabled);
        assert_eq!(p.max_clones, 0);
        assert!(p.resume_children);
    }
}

//! Hypervisor error types.

use std::fmt;

use sim_core::{DomId, Mfn, Pfn};

/// Errors returned by hypervisor operations (the moral equivalent of the
/// negative errno values a real hypercall returns).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HvError {
    /// The referenced domain does not exist.
    NoSuchDomain(DomId),
    /// The referenced domain exists but is in the wrong state.
    BadDomainState(DomId),
    /// Machine memory is exhausted (or the domain hit its allocation).
    OutOfMemory,
    /// A pseudo-physical frame is not mapped in the domain's p2m.
    NotMapped(DomId, Pfn),
    /// A machine frame is not owned by the expected domain.
    BadOwner(Mfn),
    /// A frame access crosses the page boundary: `offset + len` exceeds
    /// the page size.
    PageBounds {
        /// The frame being accessed.
        mfn: Mfn,
        /// Byte offset of the access within the page.
        offset: usize,
        /// Length of the access in bytes.
        len: usize,
    },
    /// The grant reference is invalid or not active.
    BadGrant(u32),
    /// The grantee is not allowed to use this grant entry.
    GrantDenied(u32),
    /// The event-channel port is invalid or closed.
    BadPort(u32),
    /// Cloning is disabled globally or for this domain.
    CloningDisabled(DomId),
    /// The domain reached its configured maximum number of clones.
    CloneLimit(DomId),
    /// The clone notification ring is full (backpressure, §5).
    NotificationRingFull,
    /// A hypercall argument was malformed.
    InvalidArg(&'static str),
    /// The caller lacks the privilege for this operation.
    Denied,
}

impl fmt::Display for HvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HvError::NoSuchDomain(d) => write!(f, "no such domain: {d}"),
            HvError::BadDomainState(d) => write!(f, "domain {d} is in the wrong state"),
            HvError::OutOfMemory => write!(f, "out of machine memory"),
            HvError::NotMapped(d, p) => write!(f, "{p} is not mapped in {d}"),
            HvError::BadOwner(m) => write!(f, "{m} has an unexpected owner"),
            HvError::PageBounds { mfn, offset, len } => {
                write!(f, "access of {len} bytes at offset {offset} crosses the page boundary of {mfn}")
            }
            HvError::BadGrant(g) => write!(f, "bad grant reference {g}"),
            HvError::GrantDenied(g) => write!(f, "grant {g} denied for this domain"),
            HvError::BadPort(p) => write!(f, "bad event-channel port {p}"),
            HvError::CloningDisabled(d) => write!(f, "cloning disabled for {d}"),
            HvError::CloneLimit(d) => write!(f, "clone limit reached for {d}"),
            HvError::NotificationRingFull => write!(f, "clone notification ring full"),
            HvError::InvalidArg(what) => write!(f, "invalid argument: {what}"),
            HvError::Denied => write!(f, "permission denied"),
        }
    }
}

impl std::error::Error for HvError {}

/// Convenience alias for hypervisor results.
pub type Result<T> = std::result::Result<T, HvError>;

//! Event channels: Xen's inter-domain notification primitive.
//!
//! Channels connect a local port in one domain to a remote port in another
//! (interdomain channels) or to a virtual interrupt line (VIRQ channels).
//! Nephele adds two things (§5.1):
//!
//! * the `DOMID_CHILD` wildcard: a channel created with remote
//!   [`DomId::CHILD`] is connected to *all future clones* of the creating
//!   domain — on creation a clone is implicitly bound to all such IDC
//!   channels of its parent;
//! * a new virtual interrupt, [`Virq::Cloned`], used by the hypervisor to
//!   wake the `xencloned` daemon when clone notifications are pending.

use std::collections::{BTreeMap, BTreeSet};

use sim_core::DomId;

use crate::error::{HvError, Result};

/// A local event-channel port number.
pub type Port = u32;

/// Virtual interrupt lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Virq {
    /// Timer tick.
    Timer,
    /// Xenstore update pending (used by the Xenstore ring).
    Xenstore,
    /// Console activity.
    Console,
    /// Nephele: a clone notification was queued (wakes `xencloned`).
    Cloned,
}

/// State of one channel slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Channel {
    /// Unallocated.
    Free,
    /// Allocated, waiting for the remote side to bind.
    Unbound {
        /// Domain allowed to bind the other end (may be [`DomId::CHILD`]).
        remote_allowed: DomId,
    },
    /// Connected to a remote domain's port.
    Interdomain {
        /// The peer domain (may be [`DomId::CHILD`] for parent-side IDC
        /// channels, in which case sends fan out to all bound clones).
        remote_dom: DomId,
        /// The peer's local port.
        remote_port: Port,
    },
    /// Bound to a virtual interrupt.
    VirqBound(Virq),
}

/// The per-domain event-channel table.
#[derive(Debug, Clone, Default)]
pub struct EventChannels {
    channels: Vec<Channel>,
    /// Pending (unacknowledged) notification flags, indexed by port.
    pending: Vec<bool>,
    /// Reverse index: peer domain → local ports of interdomain channels
    /// naming it. Maintained on every slot transition so that
    /// [`EventChannels::close_peer`] costs O(matching ports), not
    /// O(table) — on Dom0 the table grows with every live domain, which
    /// made peer teardown O(live domains).
    peers: BTreeMap<DomId, BTreeSet<Port>>,
}

impl EventChannels {
    /// Creates an empty table.
    pub fn new() -> Self {
        EventChannels::default()
    }

    /// Removes `port` from the peer index if its current channel is
    /// interdomain. Must run *before* the slot is overwritten.
    fn index_remove(&mut self, port: Port) {
        if let Some(Channel::Interdomain { remote_dom, .. }) = self.channels.get(port as usize) {
            let dom = *remote_dom;
            if let Some(ports) = self.peers.get_mut(&dom) {
                ports.remove(&port);
                if ports.is_empty() {
                    self.peers.remove(&dom);
                }
            }
        }
    }

    /// Adds `port` to the peer index if its current channel is
    /// interdomain. Must run *after* the slot is written.
    fn index_add(&mut self, port: Port) {
        if let Some(Channel::Interdomain { remote_dom, .. }) = self.channels.get(port as usize) {
            let dom = *remote_dom;
            self.peers.entry(dom).or_default().insert(port);
        }
    }

    fn alloc_slot(&mut self, ch: Channel) -> Port {
        let port = if let Some(idx) = self
            .channels
            .iter()
            .position(|c| matches!(c, Channel::Free))
        {
            self.channels[idx] = ch;
            idx as Port
        } else {
            self.channels.push(ch);
            self.pending.push(false);
            (self.channels.len() - 1) as Port
        };
        self.index_add(port);
        port
    }

    /// Allocates an unbound channel that `remote_allowed` may later bind.
    pub fn alloc_unbound(&mut self, remote_allowed: DomId) -> Port {
        self.alloc_slot(Channel::Unbound { remote_allowed })
    }

    /// Installs a fully connected interdomain channel (used by the platform
    /// when wiring both ends at once, e.g. device setup).
    pub fn bind_interdomain(&mut self, remote_dom: DomId, remote_port: Port) -> Port {
        self.alloc_slot(Channel::Interdomain {
            remote_dom,
            remote_port,
        })
    }

    /// Binds a VIRQ line, returning the local port.
    pub fn bind_virq(&mut self, virq: Virq) -> Port {
        self.alloc_slot(Channel::VirqBound(virq))
    }

    /// Updates the remote port of an interdomain channel (used when wiring
    /// a pair whose second end is allocated after the first).
    pub fn set_remote_port(&mut self, port: Port, new_remote_port: Port) -> Result<()> {
        match self.channels.get_mut(port as usize) {
            Some(Channel::Interdomain { remote_port, .. }) => {
                *remote_port = new_remote_port;
                Ok(())
            }
            _ => Err(HvError::BadPort(port)),
        }
    }

    /// Replaces the channel behind `port` wholesale (used by the cloning
    /// path to re-wire a child's copied channels).
    pub fn replace(&mut self, port: Port, ch: Channel) -> Result<()> {
        if self.channels.get(port as usize).is_none() {
            return Err(HvError::BadPort(port));
        }
        self.index_remove(port);
        self.channels[port as usize] = ch;
        self.index_add(port);
        Ok(())
    }

    /// Completes an unbound channel once the peer is known.
    pub fn connect(&mut self, port: Port, remote_dom: DomId, remote_port: Port) -> Result<()> {
        match self.channels.get_mut(port as usize) {
            Some(c @ Channel::Unbound { .. }) => {
                *c = Channel::Interdomain {
                    remote_dom,
                    remote_port,
                };
                self.index_add(port);
                Ok(())
            }
            _ => Err(HvError::BadPort(port)),
        }
    }

    /// Returns the channel state behind `port`.
    pub fn channel(&self, port: Port) -> Result<&Channel> {
        self.channels.get(port as usize).ok_or(HvError::BadPort(port))
    }

    /// Closes a channel.
    pub fn close(&mut self, port: Port) -> Result<()> {
        match self.channels.get(port as usize) {
            Some(c) if !matches!(c, Channel::Free) => {}
            _ => return Err(HvError::BadPort(port)),
        }
        self.index_remove(port);
        self.channels[port as usize] = Channel::Free;
        if let Some(p) = self.pending.get_mut(port as usize) {
            *p = false;
        }
        Ok(())
    }

    /// Marks a port pending; returns `true` if it was not already pending
    /// (i.e. an upcall should be injected).
    pub fn set_pending(&mut self, port: Port) -> bool {
        if let Some(p) = self.pending.get_mut(port as usize) {
            let was = *p;
            *p = true;
            !was
        } else {
            false
        }
    }

    /// Clears and returns the pending flag for a port.
    pub fn take_pending(&mut self, port: Port) -> bool {
        if let Some(p) = self.pending.get_mut(port as usize) {
            std::mem::take(p)
        } else {
            false
        }
    }

    /// Finds the port bound to `virq`, if any.
    pub fn virq_port(&self, virq: Virq) -> Option<Port> {
        self.channels
            .iter()
            .position(|c| matches!(c, Channel::VirqBound(v) if *v == virq))
            .map(|i| i as Port)
    }

    /// Number of allocated (non-free) channels.
    pub fn active_channels(&self) -> usize {
        self.channels
            .iter()
            .filter(|c| !matches!(c, Channel::Free))
            .count()
    }

    /// Iterates over `(port, channel)` for allocated slots.
    pub fn iter_active(&self) -> impl Iterator<Item = (Port, &Channel)> {
        self.channels
            .iter()
            .enumerate()
            .filter(|(_, c)| !matches!(c, Channel::Free))
            .map(|(i, c)| (i as Port, c))
    }

    /// Closes every interdomain channel whose remote end is `peer` and
    /// returns how many were closed. Used when `peer` is destroyed so no
    /// live table keeps a binding to a dead domain.
    ///
    /// Cost: O(channels actually naming `peer`) via the reverse index —
    /// independent of table size, hence of live-domain count.
    pub fn close_peer(&mut self, peer: DomId) -> usize {
        let Some(ports) = self.peers.remove(&peer) else {
            return 0;
        };
        let closed = ports.len();
        for port in ports {
            debug_assert!(
                matches!(
                    self.channels.get(port as usize),
                    Some(Channel::Interdomain { remote_dom, .. }) if *remote_dom == peer
                ),
                "peer index out of sync with channel table at port {port}"
            );
            self.channels[port as usize] = Channel::Free;
            if let Some(p) = self.pending.get_mut(port as usize) {
                *p = false;
            }
        }
        debug_assert!(
            !self
                .channels
                .iter()
                .any(|c| matches!(c, Channel::Interdomain { remote_dom, .. } if *remote_dom == peer)),
            "close_peer left a channel naming the dead peer"
        );
        closed
    }

    /// Per-peer count of interdomain channels naming each remote domain,
    /// read from the maintained reverse index (O(distinct peers)). Used
    /// by the platform auditor to cross-check the index against a scan.
    pub fn peer_counts(&self) -> impl Iterator<Item = (DomId, u64)> + '_ {
        self.peers.iter().map(|(d, ports)| (*d, ports.len() as u64))
    }

    /// Produces a child's channel table at clone time. Interdomain channels
    /// keep their port numbers (the peers are re-wired by the hypervisor's
    /// cloning logic); pending bits are cleared.
    pub fn clone_for_child(&self) -> EventChannels {
        EventChannels {
            channels: self.channels.clone(),
            pending: vec![false; self.pending.len()],
            peers: self.peers.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbound_then_connect() {
        let mut t = EventChannels::new();
        let p = t.alloc_unbound(DomId(5));
        assert!(matches!(
            t.channel(p).unwrap(),
            Channel::Unbound { remote_allowed } if *remote_allowed == DomId(5)
        ));
        t.connect(p, DomId(5), 7).unwrap();
        assert!(matches!(
            t.channel(p).unwrap(),
            Channel::Interdomain { remote_dom, remote_port }
                if *remote_dom == DomId(5) && *remote_port == 7
        ));
    }

    #[test]
    fn virq_binding_lookup() {
        let mut t = EventChannels::new();
        assert_eq!(t.virq_port(Virq::Cloned), None);
        let p = t.bind_virq(Virq::Cloned);
        assert_eq!(t.virq_port(Virq::Cloned), Some(p));
    }

    #[test]
    fn pending_flag_semantics() {
        let mut t = EventChannels::new();
        let p = t.bind_virq(Virq::Timer);
        assert!(t.set_pending(p), "first set should request an upcall");
        assert!(!t.set_pending(p), "second set is coalesced");
        assert!(t.take_pending(p));
        assert!(!t.take_pending(p));
    }

    #[test]
    fn close_frees_slot_for_reuse() {
        let mut t = EventChannels::new();
        let a = t.bind_virq(Virq::Timer);
        t.close(a).unwrap();
        let b = t.alloc_unbound(DomId::CHILD);
        assert_eq!(a, b);
        assert!(t.close(99).is_err());
    }

    #[test]
    fn peer_index_tracks_every_transition() {
        let mut t = EventChannels::new();
        let a = t.bind_interdomain(DomId(3), 0);
        let b = t.alloc_unbound(DomId(3));
        t.connect(b, DomId(3), 1).unwrap();
        let c = t.bind_interdomain(DomId(4), 0);
        t.replace(
            c,
            Channel::Interdomain {
                remote_dom: DomId(3),
                remote_port: 2,
            },
        )
        .unwrap();
        t.close(a).unwrap();
        // a closed, b and c still name DomId(3); the replace moved c off
        // DomId(4)'s index entry.
        assert_eq!(t.close_peer(DomId(4)), 0);
        assert_eq!(t.close_peer(DomId(3)), 2);
        assert_eq!(t.close_peer(DomId(3)), 0);
        assert_eq!(t.active_channels(), 0);
    }

    #[test]
    fn clone_keeps_peer_index() {
        let mut t = EventChannels::new();
        t.bind_interdomain(DomId(7), 1);
        let c = t.clone_for_child();
        let counts: Vec<_> = c.peer_counts().collect();
        assert_eq!(counts, vec![(DomId(7), 1)]);
    }

    #[test]
    fn clone_clears_pending() {
        let mut t = EventChannels::new();
        let p = t.bind_interdomain(DomId(0), 3);
        t.set_pending(p);
        let c = t.clone_for_child();
        assert_eq!(c.active_channels(), 1);
        assert!(!c.pending[p as usize]);
    }
}

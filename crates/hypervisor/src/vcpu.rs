//! Virtual CPU state.
//!
//! Only the architectural state the cloning path cares about is modelled:
//! the general-purpose registers (so that `rax` can carry the CLONEOP return
//! value distinguishing parent from child, §5.2) and the CPU affinity that
//! is replicated into clones.

/// A minimal x86-64 register file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Registers {
    /// Return-value register; CLONEOP sets it to 0 in the parent and 1 in
    /// every child, mirroring `fork()`.
    pub rax: u64,
    /// Instruction pointer.
    pub rip: u64,
    /// Stack pointer.
    pub rsp: u64,
    /// First argument register (used by guests for hypercall arguments).
    pub rdi: u64,
    /// Second argument register.
    pub rsi: u64,
}

/// A virtual CPU.
#[derive(Debug, Clone)]
pub struct Vcpu {
    /// Index within the domain.
    pub id: u32,
    /// Whether the vCPU has been brought online.
    pub online: bool,
    /// Register file.
    pub regs: Registers,
    /// Physical core this vCPU is pinned to, if any.
    pub affinity: Option<usize>,
}

impl Vcpu {
    /// Creates an offline vCPU with zeroed registers.
    pub fn new(id: u32) -> Self {
        Vcpu {
            id,
            online: false,
            regs: Registers::default(),
            affinity: None,
        }
    }

    /// Produces the cloned vCPU for a child domain: registers and affinity
    /// are replicated, except `rax` which carries the child-side hypercall
    /// return value (1).
    pub fn clone_for_child(&self) -> Vcpu {
        let mut v = self.clone();
        v.regs.rax = 1;
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_for_child_sets_rax() {
        let mut v = Vcpu::new(0);
        v.online = true;
        v.regs.rax = 0;
        v.regs.rip = 0xdead;
        v.affinity = Some(3);
        let c = v.clone_for_child();
        assert_eq!(c.regs.rax, 1);
        assert_eq!(c.regs.rip, 0xdead);
        assert_eq!(c.affinity, Some(3));
        assert!(c.online);
    }
}

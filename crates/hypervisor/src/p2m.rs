//! Persistent pseudo-physical → machine map for clone families.
//!
//! A clone family shares one immutable *base template* — the parent's
//! p2m at first-clone time, built once per `CLONEOP` batch — behind an
//! `Rc`. Each family member layers a thin *overlay* on top recording
//! only its private divergences: the P private/aux patches stamped at
//! clone time plus any slots re-pointed by later COW faults. The merged
//! view (`overlay` entry if present, base slot otherwise) is the
//! domain's p2m; the base itself is never mutated after construction.
//!
//! This is the same persistent-structure design the Xenstore tree uses
//! (PR 5): `Rc` handles make cloning and checkpointing O(1) structural
//! snapshots, `Rc::make_mut` gives copy-on-write mutation, and honest
//! sharing statistics fall out of pointer identity (`Rc::as_ptr`).
//!
//! The overlay is kept *canonical*: an entry whose value equals the
//! base slot is removed rather than stored, so `overlay_len` is exactly
//! the number of slots where the domain diverges from its template, and
//! re-pointing a faulted slot back to the shared frame on `clone_reset`
//! shrinks the overlay back to its checkpoint form. The auditor
//! enforces this (invariant "p2m-overlay").

use std::collections::BTreeMap;
use std::rc::Rc;

use sim_core::{Mfn, Pfn};

/// A structural snapshot of a p2m overlay, as captured by
/// [`P2m::overlay_snapshot`] (used by the KFX checkpoint).
pub type P2mOverlay = Rc<BTreeMap<u64, Option<Mfn>>>;

/// Resident bytes per base-template slot (a densely stored
/// `Option<Mfn>`).
pub const BASE_SLOT_BYTES: u64 = 8;

/// Resident bytes per overlay entry (key + value + B-tree node
/// overhead, amortized).
pub const OVERLAY_ENTRY_BYTES: u64 = 24;

/// Resident-memory split of p2m storage between structurally shared
/// template bytes and private per-domain bytes, as computed by
/// `Hypervisor::p2m_sharing`. Mirrors the Xenstore `SharingStats`
/// convention: shared storage is counted at every point of use, so the
/// two fields sum to the total resident (sharing-agnostic) figure.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct P2mSharing {
    /// Bytes of base-template storage referenced by more than one
    /// domain, counted once per referencing domain.
    pub shared_bytes: u64,
    /// Bytes backed by storage only one domain uses: sole-owner base
    /// templates plus every overlay entry.
    pub unique_bytes: u64,
}

/// Pseudo-physical → machine mapping with structural sharing. `None`
/// entries are holes.
#[derive(Debug, Clone)]
pub struct P2m {
    /// The family's shared template. Immutable once constructed; kept
    /// alive for the family's lifetime by every member's handle.
    base: Rc<Vec<Option<Mfn>>>,
    /// Private divergences from the template, by slot index.
    overlay: P2mOverlay,
}

impl P2m {
    /// Builds a root p2m whose base template is `slots` and whose
    /// overlay is empty (a freshly created, unshared domain).
    pub fn from_vec(slots: Vec<Option<Mfn>>) -> Self {
        P2m {
            base: Rc::new(slots),
            overlay: Rc::new(BTreeMap::new()),
        }
    }

    /// Number of slots (RAM pages plus the special-page tail).
    pub fn len(&self) -> usize {
        self.base.len()
    }

    /// `true` when the p2m has no slots at all.
    pub fn is_empty(&self) -> bool {
        self.base.is_empty()
    }

    /// The merged view of one slot: `None` for holes *and* for indices
    /// past the end (mirroring `Vec::get().copied().flatten()`).
    pub fn get(&self, idx: usize) -> Option<Mfn> {
        if idx >= self.base.len() {
            return None;
        }
        match self.overlay.get(&(idx as u64)) {
            Some(v) => *v,
            None => self.base[idx],
        }
    }

    /// The template's view of one slot, ignoring the overlay.
    pub fn base_get(&self, idx: usize) -> Option<Mfn> {
        self.base.get(idx).copied().flatten()
    }

    /// Points slot `idx` at `val`, keeping the overlay canonical: a
    /// value equal to the base slot removes the overlay entry instead
    /// of storing a redundant one.
    ///
    /// # Panics
    /// When `idx` is out of range (as indexing the old dense `Vec`
    /// would have).
    pub fn set(&mut self, idx: usize, val: Option<Mfn>) {
        assert!(idx < self.base.len(), "p2m slot {idx} out of range");
        let overlay = Rc::make_mut(&mut self.overlay);
        if val == self.base[idx] {
            overlay.remove(&(idx as u64));
        } else {
            overlay.insert(idx as u64, val);
        }
    }

    /// Merged per-slot view, in slot order (replaces iterating the old
    /// dense `Vec<Option<Mfn>>`).
    pub fn iter(&self) -> impl Iterator<Item = Option<Mfn>> + '_ {
        self.base
            .iter()
            .enumerate()
            .map(move |(i, b)| match self.overlay.get(&(i as u64)) {
                Some(v) => *v,
                None => *b,
            })
    }

    /// Mapped (non-hole) slots as `(pfn, mfn)` pairs, in pfn order.
    pub fn iter_mapped(&self) -> impl Iterator<Item = (Pfn, Mfn)> + '_ {
        self.iter()
            .enumerate()
            .filter_map(|(i, m)| m.map(|mfn| (Pfn(i as u64), mfn)))
    }

    /// Number of populated slots.
    pub fn mapped_pages(&self) -> u64 {
        self.iter().filter(Option::is_some).count() as u64
    }

    /// Number of slots where this domain diverges from its template.
    pub fn overlay_len(&self) -> usize {
        self.overlay.len()
    }

    /// The overlay entries `(slot index, value)`, in index order.
    pub fn overlay_entries(&self) -> impl Iterator<Item = (u64, Option<Mfn>)> + '_ {
        self.overlay.iter().map(|(i, v)| (*i, *v))
    }

    /// O(1) structural snapshot of the overlay (the KFX checkpoint's
    /// memory-layout capture).
    pub fn overlay_snapshot(&self) -> P2mOverlay {
        Rc::clone(&self.overlay)
    }

    /// O(1) structural restore to a snapshot taken by
    /// [`P2m::overlay_snapshot`] on this same p2m.
    pub fn restore_overlay(&mut self, overlay: P2mOverlay) {
        self.overlay = overlay;
    }

    /// Builds a child's p2m: an `Rc` handle on this p2m's template plus
    /// an overlay holding this p2m's own divergences and the child's
    /// private-slot `patches`. O(divergences + patches), independent of
    /// the template size.
    pub fn child_with_patches(
        &self,
        patches: impl IntoIterator<Item = (u64, Option<Mfn>)>,
    ) -> P2m {
        let mut overlay = (*self.overlay).clone();
        for (idx, val) in patches {
            debug_assert!((idx as usize) < self.base.len());
            if val == self.base[idx as usize] {
                overlay.remove(&idx);
            } else {
                overlay.insert(idx, val);
            }
        }
        P2m {
            base: Rc::clone(&self.base),
            overlay: Rc::new(overlay),
        }
    }

    /// Number of slots in the shared template.
    pub fn base_len(&self) -> usize {
        self.base.len()
    }

    /// Pointer identity of the shared template, for sharing statistics
    /// (two domains with equal `base_addr` share one resident copy).
    pub fn base_addr(&self) -> usize {
        Rc::as_ptr(&self.base) as usize
    }

    /// Test-only corruption hook: plants a raw overlay entry, bypassing
    /// the canonicalization in [`P2m::set`], so the auditor's overlay
    /// invariants can be exercised. Not part of the simulated machine.
    #[doc(hidden)]
    pub fn corrupt_overlay_for_test(&mut self, idx: u64, val: Option<Mfn>) {
        Rc::make_mut(&mut self.overlay).insert(idx, val);
    }
}

/// Logical equality: two p2ms are equal when their merged views are,
/// regardless of how the slots are split between base and overlay.
impl PartialEq for P2m {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}

impl Eq for P2m {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> P2m {
        P2m::from_vec(vec![Some(Mfn(10)), None, Some(Mfn(12)), Some(Mfn(13))])
    }

    #[test]
    fn merged_view_prefers_overlay() {
        let mut p = sample();
        assert_eq!(p.get(0), Some(Mfn(10)));
        p.set(0, Some(Mfn(99)));
        assert_eq!(p.get(0), Some(Mfn(99)));
        assert_eq!(p.base_get(0), Some(Mfn(10)));
        assert_eq!(p.get(1), None);
        assert_eq!(p.get(7), None, "past-the-end reads are holes");
        assert_eq!(p.mapped_pages(), 3);
    }

    #[test]
    fn set_keeps_the_overlay_canonical() {
        let mut p = sample();
        p.set(2, Some(Mfn(42)));
        assert_eq!(p.overlay_len(), 1);
        // Re-pointing back at the base value must *remove* the entry,
        // not store a redundant one — this is what makes clone_reset
        // shrink the overlay back to its checkpoint form.
        p.set(2, Some(Mfn(12)));
        assert_eq!(p.overlay_len(), 0);
        assert_eq!(p.get(2), Some(Mfn(12)));
    }

    #[test]
    fn children_share_the_template_structurally() {
        let parent = sample();
        let child = parent.child_with_patches([(2u64, Some(Mfn(77)))]);
        assert_eq!(parent.base_addr(), child.base_addr());
        assert_eq!(child.get(2), Some(Mfn(77)));
        assert_eq!(child.get(0), Some(Mfn(10)));
        assert_eq!(child.overlay_len(), 1);
        // A patch equal to the base collapses to nothing.
        let plain = parent.child_with_patches([(0u64, Some(Mfn(10)))]);
        assert_eq!(plain.overlay_len(), 0);
    }

    #[test]
    fn grandchildren_inherit_parent_divergences() {
        let root = sample();
        let mut child = root.child_with_patches([(0u64, Some(Mfn(50)))]);
        child.set(3, Some(Mfn(51)));
        let grandchild = child.child_with_patches([(2u64, Some(Mfn(60)))]);
        assert_eq!(grandchild.get(0), Some(Mfn(50)));
        assert_eq!(grandchild.get(3), Some(Mfn(51)));
        assert_eq!(grandchild.get(2), Some(Mfn(60)));
        assert_eq!(grandchild.base_addr(), root.base_addr());
    }

    #[test]
    fn overlay_snapshot_and_restore_are_structural() {
        let mut p = sample();
        p.set(0, Some(Mfn(80)));
        let snap = p.overlay_snapshot();
        p.set(2, Some(Mfn(81)));
        p.set(0, Some(Mfn(82)));
        p.restore_overlay(snap);
        assert_eq!(p.get(0), Some(Mfn(80)));
        assert_eq!(p.get(2), Some(Mfn(12)));
        assert_eq!(p.overlay_len(), 1);
    }

    #[test]
    fn equality_is_logical_not_structural() {
        let a = sample();
        let mut b = sample();
        assert_eq!(a, b);
        b.set(0, Some(Mfn(5)));
        assert_ne!(a, b);
        b.set(0, Some(Mfn(10)));
        assert_eq!(a, b, "same merged view, different history");
        // A child stamped with values equal to a sibling's compares
        // equal even though base/overlay splits differ.
        let c = a.child_with_patches([(1u64, Some(Mfn(7)))]);
        let d = P2m::from_vec(vec![Some(Mfn(10)), Some(Mfn(7)), Some(Mfn(12)), Some(Mfn(13))]);
        assert_eq!(c, d);
    }
}

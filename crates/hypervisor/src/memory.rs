//! Machine memory: the frame table, page ownership and copy-on-write.
//!
//! Mirrors Xen's per-page metadata. Every 4 KiB machine frame has an owner;
//! Nephele's cloning moves shareable frames to the pseudo-domain `dom_cow`
//! (here [`FrameOwner::Cow`]) with a reference count, exactly as described in
//! §5.2 of the paper (mechanism inherited from Snowflock and extended to
//! paravirtualized guests):
//!
//! * on sharing, ownership transfers from the original owner to `dom_cow`
//!   and the refcount counts the domains mapping the frame;
//! * a write to a shared frame with refcount > 1 copies the page;
//! * a write to a shared frame with refcount == 1 transfers ownership from
//!   `dom_cow` to the *faulting* domain (which may differ from the original
//!   owner).
//!
//! Page contents are modelled lazily ([`PageContent`]): most frames never
//! materialize a byte buffer, which is what lets the simulation hold the
//! paper's 16 GiB machine (4.2 M frames) and ~8900 guests in memory.

use sim_core::{DomId, Mfn, PAGE_SIZE};

use crate::error::{HvError, Result};

/// Who owns a machine frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameOwner {
    /// On the free list.
    Free,
    /// Owned exclusively by one domain.
    Dom(DomId),
    /// Shared copy-on-write frame owned by `dom_cow`.
    Cow,
    /// Owned by the hypervisor itself.
    Xen,
}

/// Lazily materialized page contents.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum PageContent {
    /// All zeroes (the state of freshly allocated memory).
    #[default]
    Zero,
    /// Every 8-byte word holds this value (cheap "pattern" fill used by the
    /// workloads to dirty memory without allocating real buffers).
    Fill(u64),
    /// Fully materialized contents.
    Bytes(Box<[u8]>),
}

impl PageContent {
    /// Reads the byte at `offset`.
    pub fn byte_at(&self, offset: usize) -> u8 {
        match self {
            PageContent::Zero => 0,
            PageContent::Fill(v) => v.to_le_bytes()[offset % 8],
            PageContent::Bytes(b) => b[offset],
        }
    }

    /// Materializes the content into a boxed byte buffer.
    pub fn to_bytes(&self) -> Box<[u8]> {
        match self {
            PageContent::Zero => vec![0u8; PAGE_SIZE].into_boxed_slice(),
            PageContent::Fill(v) => {
                let mut b = vec![0u8; PAGE_SIZE];
                for chunk in b.chunks_mut(8) {
                    chunk.copy_from_slice(&v.to_le_bytes()[..chunk.len()]);
                }
                b.into_boxed_slice()
            }
            PageContent::Bytes(b) => b.clone(),
        }
    }

    /// Writes `data` at `offset`, materializing bytes only when needed.
    pub fn write(&mut self, offset: usize, data: &[u8]) {
        debug_assert!(offset + data.len() <= PAGE_SIZE);
        // A write covering the whole page replaces the content outright;
        // the old representation never needs to be materialized.
        if offset == 0 && data.len() == PAGE_SIZE {
            *self = PageContent::Bytes(data.to_vec().into_boxed_slice());
            return;
        }
        let mut bytes = match std::mem::take(self) {
            PageContent::Bytes(b) => b,
            other => other.to_bytes(),
        };
        bytes[offset..offset + data.len()].copy_from_slice(data);
        *self = PageContent::Bytes(bytes);
    }

    /// Overwrites the whole page with a repeating 8-byte pattern without
    /// materializing a buffer.
    pub fn fill(&mut self, pattern: u64) {
        *self = PageContent::Fill(pattern);
    }
}

/// Per-frame metadata.
#[derive(Debug, Clone)]
pub struct Frame {
    owner: FrameOwner,
    /// For [`FrameOwner::Cow`] frames: how many domains map this frame.
    refcount: u32,
    /// Whether guest mappings of this frame are writable.
    writable: bool,
    content: PageContent,
}

impl Frame {
    fn free() -> Self {
        Frame {
            owner: FrameOwner::Free,
            refcount: 0,
            writable: false,
            content: PageContent::Zero,
        }
    }

    /// The frame's current owner.
    pub fn owner(&self) -> FrameOwner {
        self.owner
    }

    /// The sharing reference count (meaningful for COW frames).
    pub fn refcount(&self) -> u32 {
        self.refcount
    }

    /// Whether the frame is mapped writable.
    pub fn writable(&self) -> bool {
        self.writable
    }

    /// Read-only access to the page contents.
    pub fn content(&self) -> &PageContent {
        &self.content
    }
}

/// Statistics snapshot of the frame table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryStats {
    /// Total machine frames managed.
    pub total: u64,
    /// Frames on the free list.
    pub free: u64,
    /// Frames owned by `dom_cow` (shared, counted once).
    pub cow_shared: u64,
    /// Frames owned by Xen.
    pub xen: u64,
}

/// Number of deterministic frame-table shards. A pure constant: shard
/// boundaries depend only on the table size, never on host parallelism,
/// so sharding is invisible to every virtual-time outcome.
pub const FRAME_SHARDS: usize = 8;

/// Per-shard incremental owner-class counters. Each machine frame
/// belongs to exactly one contiguous shard; the global COW/Xen counts
/// are the sum over shards (checked against a full scan by
/// [`FrameTable::stats`] in debug builds and by the state auditor's
/// shard invariant in all builds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// COW frames whose number falls in this shard's range.
    pub cow: u64,
    /// Xen-owned frames in this shard's range.
    pub xen: u64,
}

/// Outcome of a COW write fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CowResolution {
    /// The frame had other sharers: a private copy was made at the returned
    /// frame; the p2m must be repointed.
    Copied(Mfn),
    /// The faulting domain was the last sharer: ownership transferred in
    /// place (the cheap path).
    Transferred,
}

/// The machine frame table.
#[derive(Debug)]
pub struct FrameTable {
    frames: Vec<Frame>,
    free_list: Vec<Mfn>,
    /// Per-shard incremental owner-class counters, maintained on every
    /// ownership transition so [`FrameTable::stats`] is O(1) (a sum over
    /// [`FRAME_SHARDS`] constant-size shards).
    shards: [ShardStats; FRAME_SHARDS],
    /// Frames per shard: `ceil(total / FRAME_SHARDS)`, so shard `i` owns
    /// the contiguous range `[i * shard_len, (i + 1) * shard_len)` clamped
    /// to the table — a pure function of the table size.
    shard_len: u64,
}

impl FrameTable {
    /// Creates a frame table managing `total` frames, all free.
    pub fn new(total: u64) -> Self {
        let frames = vec![Frame::free(); total as usize];
        // Hand out low frame numbers first (cosmetic but deterministic).
        let free_list = (0..total).rev().map(Mfn).collect();
        FrameTable {
            frames,
            free_list,
            shards: [ShardStats::default(); FRAME_SHARDS],
            shard_len: total.div_ceil(FRAME_SHARDS as u64).max(1),
        }
    }

    /// The shard a frame number belongs to. Contiguous ranges: frame
    /// ownership of shards is a partition of `[0, total)`, so no frame is
    /// ever accounted by two shards (the auditor's shard invariant checks
    /// the counters agree with a per-shard scan).
    pub fn shard_of(&self, mfn: Mfn) -> usize {
        ((mfn.0 / self.shard_len) as usize).min(FRAME_SHARDS - 1)
    }

    /// The contiguous frame-number range shard `shard` owns (empty for
    /// trailing shards of a small table).
    pub fn shard_range(&self, shard: usize) -> std::ops::Range<u64> {
        let total = self.total_frames();
        let start = (shard as u64 * self.shard_len).min(total);
        let end = ((shard as u64 + 1) * self.shard_len).min(total);
        start..end
    }

    /// The per-shard incremental counters (one entry per shard, in shard
    /// order).
    pub fn shard_incremental_stats(&self) -> [ShardStats; FRAME_SHARDS] {
        self.shards
    }

    /// Recounts every shard's COW/Xen frames with a full scan — the
    /// oracle the per-shard incremental counters are audited against.
    pub fn scan_shard_stats(&self) -> [ShardStats; FRAME_SHARDS] {
        let mut shards = [ShardStats::default(); FRAME_SHARDS];
        for (i, f) in self.frames.iter().enumerate() {
            let s = self.shard_of(Mfn(i as u64));
            match f.owner {
                FrameOwner::Cow => shards[s].cow += 1,
                FrameOwner::Xen => shards[s].xen += 1,
                _ => {}
            }
        }
        shards
    }

    /// Adjusts the incremental owner-class counters for one frame moving
    /// from `from` to `to`. Every method that changes a frame's owner must
    /// route the change through here (checked by the `debug_assert` scan in
    /// [`FrameTable::stats`]). The counter lives in the shard owning `mfn`.
    fn account_transition(&mut self, mfn: Mfn, from: FrameOwner, to: FrameOwner) {
        let s = self.shard_of(mfn);
        match from {
            FrameOwner::Cow => self.shards[s].cow -= 1,
            FrameOwner::Xen => self.shards[s].xen -= 1,
            FrameOwner::Free | FrameOwner::Dom(_) => {}
        }
        match to {
            FrameOwner::Cow => self.shards[s].cow += 1,
            FrameOwner::Xen => self.shards[s].xen += 1,
            FrameOwner::Free | FrameOwner::Dom(_) => {}
        }
    }

    /// Global COW count: the sum over the (constant number of) shards.
    fn cow_count(&self) -> u64 {
        self.shards.iter().map(|s| s.cow).sum()
    }

    /// Global Xen-owned count, summed over shards.
    fn xen_count(&self) -> u64 {
        self.shards.iter().map(|s| s.xen).sum()
    }

    fn frame(&self, mfn: Mfn) -> Result<&Frame> {
        self.frames.get(mfn.0 as usize).ok_or(HvError::BadOwner(mfn))
    }

    fn frame_mut(&mut self, mfn: Mfn) -> Result<&mut Frame> {
        self.frames
            .get_mut(mfn.0 as usize)
            .ok_or(HvError::BadOwner(mfn))
    }

    /// Returns frame metadata for inspection.
    pub fn inspect(&self, mfn: Mfn) -> Result<&Frame> {
        self.frame(mfn)
    }

    /// Number of free frames.
    pub fn free_frames(&self) -> u64 {
        self.free_list.len() as u64
    }

    /// Total frames managed.
    pub fn total_frames(&self) -> u64 {
        self.frames.len() as u64
    }

    /// Returns an accounting snapshot. O(1): the owner-class counts are
    /// maintained incrementally on every ownership transition, so sampling
    /// this from experiment hot loops is free even on the paper's 16 GiB
    /// (4.2 M frame) machine. Debug builds cross-check the counters against
    /// a full scan of the frame table.
    pub fn stats(&self) -> MemoryStats {
        let stats = MemoryStats {
            total: self.total_frames(),
            free: self.free_frames(),
            cow_shared: self.cow_count(),
            xen: self.xen_count(),
        };
        debug_assert_eq!(
            stats,
            self.scan_stats(),
            "incremental owner accounting drifted from the frame table"
        );
        stats
    }

    /// The incremental-counter snapshot *without* the debug cross-check
    /// scan. The state auditor compares this against [`scan_stats`] itself
    /// and reports a drift as a structured violation instead of panicking,
    /// so it must be able to read the raw counters.
    ///
    /// [`scan_stats`]: FrameTable::scan_stats
    pub fn incremental_stats(&self) -> MemoryStats {
        MemoryStats {
            total: self.total_frames(),
            free: self.free_frames(),
            cow_shared: self.cow_count(),
            xen: self.xen_count(),
        }
    }

    /// The original O(n) accounting scan, kept as the oracle for the
    /// incremental counters behind [`FrameTable::stats`].
    pub fn scan_stats(&self) -> MemoryStats {
        let mut cow = 0;
        let mut xen = 0;
        for f in &self.frames {
            match f.owner {
                FrameOwner::Cow => cow += 1,
                FrameOwner::Xen => xen += 1,
                _ => {}
            }
        }
        MemoryStats {
            total: self.total_frames(),
            free: self.free_frames(),
            cow_shared: cow,
            xen,
        }
    }

    /// Allocates one zeroed frame for `owner`.
    pub fn alloc(&mut self, owner: FrameOwner) -> Result<Mfn> {
        debug_assert!(!matches!(owner, FrameOwner::Free));
        let mfn = self.free_list.pop().ok_or(HvError::OutOfMemory)?;
        let f = &mut self.frames[mfn.0 as usize];
        debug_assert_eq!(f.owner, FrameOwner::Free);
        f.owner = owner;
        f.refcount = if matches!(owner, FrameOwner::Cow) { 1 } else { 0 };
        f.writable = true;
        f.content = PageContent::Zero;
        self.account_transition(mfn, FrameOwner::Free, owner);
        Ok(mfn)
    }

    /// Allocates `n` frames for `owner`. All-or-nothing: the free count
    /// is checked up front, so a failing call allocates nothing (there
    /// is no partial allocation to roll back).
    pub fn alloc_many(&mut self, owner: FrameOwner, n: u64) -> Result<Vec<Mfn>> {
        if (self.free_list.len() as u64) < n {
            return Err(HvError::OutOfMemory);
        }
        Ok((0..n)
            .map(|_| self.alloc(owner).expect("checked free count"))
            .collect())
    }

    /// Allocates frames for several owners in one pass: `requests` is a
    /// list of `(owner, count)` pairs and the result holds one `Vec<Mfn>`
    /// per request, in request order. All-or-nothing: when the combined
    /// count exceeds the free frames, nothing is allocated. Frame numbers
    /// are handed out exactly as the equivalent sequence of
    /// [`FrameTable::alloc_many`] calls would hand them out, so batched and
    /// sequential callers see identical placement — the property the
    /// batched clone first stage relies on.
    pub fn alloc_batch(&mut self, requests: &[(FrameOwner, u64)]) -> Result<Vec<Vec<Mfn>>> {
        let total: u64 = requests.iter().map(|(_, n)| n).sum();
        if (self.free_list.len() as u64) < total {
            return Err(HvError::OutOfMemory);
        }
        Ok(requests
            .iter()
            .map(|&(owner, n)| {
                (0..n)
                    .map(|_| self.alloc(owner).expect("checked combined free count"))
                    .collect()
            })
            .collect())
    }

    /// Frees a frame owned by `expected` (exclusive frames only).
    pub fn free(&mut self, mfn: Mfn, expected: FrameOwner) -> Result<()> {
        let f = self.frame_mut(mfn)?;
        if f.owner != expected {
            return Err(HvError::BadOwner(mfn));
        }
        f.owner = FrameOwner::Free;
        f.refcount = 0;
        f.writable = false;
        f.content = PageContent::Zero;
        self.free_list.push(mfn);
        self.account_transition(mfn, expected, FrameOwner::Free);
        Ok(())
    }

    /// Shares a frame owned by `from`: ownership moves to `dom_cow` and the
    /// refcount becomes `sharers` (the current owner plus the new mappers).
    /// Regular pages become read-only (COW); IDC pages stay `writable` —
    /// they are *genuinely* shared between parent and clones (§5.2.2), so
    /// writes to them never fault.
    pub fn share_to_cow(&mut self, mfn: Mfn, from: DomId, sharers: u32, writable: bool) -> Result<()> {
        let f = self.frame_mut(mfn)?;
        if f.owner != FrameOwner::Dom(from) {
            return Err(HvError::BadOwner(mfn));
        }
        f.owner = FrameOwner::Cow;
        f.refcount = sharers;
        f.writable = writable;
        self.account_transition(mfn, FrameOwner::Dom(from), FrameOwner::Cow);
        Ok(())
    }

    /// Adds `extra` sharers to an already-COW frame.
    pub fn reshare(&mut self, mfn: Mfn, extra: u32) -> Result<()> {
        let f = self.frame_mut(mfn)?;
        if f.owner != FrameOwner::Cow {
            return Err(HvError::BadOwner(mfn));
        }
        f.refcount += extra;
        Ok(())
    }

    /// Drops one sharer from a COW frame (e.g. on domain destruction).
    /// Frees the frame when the count reaches zero.
    pub fn unshare_drop(&mut self, mfn: Mfn) -> Result<()> {
        let f = self.frame_mut(mfn)?;
        if f.owner != FrameOwner::Cow || f.refcount == 0 {
            return Err(HvError::BadOwner(mfn));
        }
        f.refcount -= 1;
        if f.refcount == 0 {
            f.owner = FrameOwner::Free;
            f.writable = false;
            f.content = PageContent::Zero;
            self.free_list.push(mfn);
            self.account_transition(mfn, FrameOwner::Cow, FrameOwner::Free);
        }
        Ok(())
    }

    /// Resolves a write fault by `faulter` on a COW frame.
    ///
    /// With other sharers present, allocates a private copy and returns
    /// [`CowResolution::Copied`]; as the last sharer, transfers ownership in
    /// place ([`CowResolution::Transferred`], the path §5.2 describes where
    /// the new owner "may be different from the original owner domain").
    pub fn cow_fault(&mut self, mfn: Mfn, faulter: DomId) -> Result<CowResolution> {
        let refcount = {
            let f = self.frame(mfn)?;
            if f.owner != FrameOwner::Cow {
                return Err(HvError::BadOwner(mfn));
            }
            f.refcount
        };
        if refcount <= 1 {
            // Last sharer: transfer in place — no content clone; the
            // frame keeps its bytes and only the metadata changes.
            let f = self.frame_mut(mfn)?;
            f.owner = FrameOwner::Dom(faulter);
            f.refcount = 0;
            f.writable = true;
            self.account_transition(mfn, FrameOwner::Cow, FrameOwner::Dom(faulter));
            Ok(CowResolution::Transferred)
        } else {
            let content = self.frame(mfn)?.content.clone();
            let copy = self.alloc(FrameOwner::Dom(faulter))?;
            self.frames[copy.0 as usize].content = content;
            let f = self.frame_mut(mfn)?;
            f.refcount -= 1;
            Ok(CowResolution::Copied(copy))
        }
    }

    /// Returns [`HvError::PageBounds`] when an access of `len` bytes at
    /// `offset` would cross the page boundary.
    fn check_bounds(mfn: Mfn, offset: usize, len: usize) -> Result<()> {
        if offset.checked_add(len).map_or(true, |end| end > PAGE_SIZE) {
            return Err(HvError::PageBounds { mfn, offset, len });
        }
        Ok(())
    }

    /// Reads bytes from a frame into `buf`. Bounds-checked: an access
    /// crossing the page boundary fails with [`HvError::PageBounds`]
    /// regardless of the content representation.
    pub fn read(&self, mfn: Mfn, offset: usize, buf: &mut [u8]) -> Result<()> {
        Self::check_bounds(mfn, offset, buf.len())?;
        let f = self.frame(mfn)?;
        match &f.content {
            PageContent::Zero => buf.fill(0),
            PageContent::Fill(v) => {
                let pat = v.to_le_bytes();
                for (i, b) in buf.iter_mut().enumerate() {
                    *b = pat[(offset + i) % 8];
                }
            }
            PageContent::Bytes(bytes) => {
                buf.copy_from_slice(&bytes[offset..offset + buf.len()]);
            }
        }
        Ok(())
    }

    /// Writes bytes into a frame. Bounds-checked like [`FrameTable::read`].
    /// The caller is responsible for COW resolution; writing a read-only
    /// frame is a logic error.
    ///
    /// # Panics
    ///
    /// Panics (debug assertion) if the frame is not writable.
    pub fn write(&mut self, mfn: Mfn, offset: usize, data: &[u8]) -> Result<()> {
        Self::check_bounds(mfn, offset, data.len())?;
        let f = self.frame_mut(mfn)?;
        debug_assert!(f.writable, "write to read-only {mfn}");
        f.content.write(offset, data);
        Ok(())
    }

    /// Fills a frame with an 8-byte pattern (cheap whole-page dirty).
    /// Always a whole-page access, so unlike [`FrameTable::read`] and
    /// [`FrameTable::write`] there is no offset to bounds-check.
    pub fn fill(&mut self, mfn: Mfn, pattern: u64) -> Result<()> {
        let f = self.frame_mut(mfn)?;
        debug_assert!(f.writable, "fill of read-only {mfn}");
        f.content.fill(pattern);
        Ok(())
    }

    /// Replaces a frame's content wholesale (restore path).
    pub fn set_content(&mut self, mfn: Mfn, content: PageContent) -> Result<()> {
        let f = self.frame_mut(mfn)?;
        debug_assert!(f.writable, "set_content on read-only {mfn}");
        f.content = content;
        Ok(())
    }

    /// Copies the full contents of `src` into `dst`.
    pub fn copy_page(&mut self, src: Mfn, dst: Mfn) -> Result<()> {
        let content = self.frame(src)?.content.clone();
        let f = self.frame_mut(dst)?;
        f.content = content;
        Ok(())
    }

    /// Iterates over every frame with its number, in frame order. The state
    /// auditor uses this to cross-check per-frame metadata against the p2m
    /// back-references; it is O(total frames), so not for hot paths.
    pub fn iter_frames(&self) -> impl Iterator<Item = (Mfn, &Frame)> {
        self.frames
            .iter()
            .enumerate()
            .map(|(i, f)| (Mfn(i as u64), f))
    }

    /// Test-only fault injection: silently corrupts a frame's refcount by
    /// `delta` without routing through the accounting. The owner class does
    /// not change, so the incremental counters stay "consistent" — only the
    /// per-frame refcount-vs-p2m audit can catch it, which is exactly what
    /// the auditor's negative tests exercise.
    #[doc(hidden)]
    pub fn corrupt_refcount_for_test(&mut self, mfn: Mfn, delta: i64) {
        let f = &mut self.frames[mfn.0 as usize];
        f.refcount = (f.refcount as i64 + delta).max(0) as u32;
    }

    /// Test-only fault injection: skews one shard's incremental COW
    /// counter without touching any frame. Paired `+1`/`-1` calls on two
    /// different shards keep the *global* sum consistent, so only the
    /// per-shard audit invariant can see the damage — exactly the blind
    /// spot the auditor's shard negative test exercises.
    #[doc(hidden)]
    pub fn corrupt_shard_counter_for_test(&mut self, shard: usize, cow_delta: i64) {
        let s = &mut self.shards[shard];
        s.cow = (s.cow as i64 + cow_delta).max(0) as u64;
    }

    /// Transfers exclusive ownership of a frame between domains (used when
    /// rewriting private pages during cloning).
    pub fn transfer(&mut self, mfn: Mfn, from: FrameOwner, to: FrameOwner) -> Result<()> {
        let f = self.frame_mut(mfn)?;
        if f.owner != from {
            return Err(HvError::BadOwner(mfn));
        }
        f.owner = to;
        self.account_transition(mfn, from, to);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const D1: DomId = DomId(1);
    const D2: DomId = DomId(2);

    #[test]
    fn alloc_and_free_roundtrip() {
        let mut ft = FrameTable::new(8);
        assert_eq!(ft.free_frames(), 8);
        let m = ft.alloc(FrameOwner::Dom(D1)).unwrap();
        assert_eq!(ft.free_frames(), 7);
        assert_eq!(ft.inspect(m).unwrap().owner(), FrameOwner::Dom(D1));
        ft.free(m, FrameOwner::Dom(D1)).unwrap();
        assert_eq!(ft.free_frames(), 8);
    }

    #[test]
    fn free_requires_matching_owner() {
        let mut ft = FrameTable::new(2);
        let m = ft.alloc(FrameOwner::Dom(D1)).unwrap();
        assert!(ft.free(m, FrameOwner::Dom(D2)).is_err());
    }

    #[test]
    fn exhaustion_reported() {
        let mut ft = FrameTable::new(1);
        ft.alloc(FrameOwner::Xen).unwrap();
        assert_eq!(ft.alloc(FrameOwner::Xen), Err(HvError::OutOfMemory));
        assert!(ft.alloc_many(FrameOwner::Xen, 1).is_err());
    }

    #[test]
    fn share_and_cow_copy() {
        let mut ft = FrameTable::new(4);
        let m = ft.alloc(FrameOwner::Dom(D1)).unwrap();
        ft.write(m, 0, &[7, 7, 7]).unwrap();
        ft.share_to_cow(m, D1, 2, false).unwrap();
        assert_eq!(ft.inspect(m).unwrap().owner(), FrameOwner::Cow);
        assert!(!ft.inspect(m).unwrap().writable());

        // Fault with two sharers: must copy, original refcount drops.
        match ft.cow_fault(m, D2).unwrap() {
            CowResolution::Copied(copy) => {
                let mut buf = [0u8; 3];
                ft.read(copy, 0, &mut buf).unwrap();
                assert_eq!(buf, [7, 7, 7]);
                assert_eq!(ft.inspect(copy).unwrap().owner(), FrameOwner::Dom(D2));
            }
            other => panic!("expected copy, got {other:?}"),
        }
        assert_eq!(ft.inspect(m).unwrap().refcount(), 1);
    }

    #[test]
    fn cow_last_sharer_transfers_to_faulter() {
        let mut ft = FrameTable::new(4);
        let m = ft.alloc(FrameOwner::Dom(D1)).unwrap();
        ft.share_to_cow(m, D1, 1, false).unwrap();
        // D2 faults even though D1 was the original owner.
        assert_eq!(ft.cow_fault(m, D2).unwrap(), CowResolution::Transferred);
        assert_eq!(ft.inspect(m).unwrap().owner(), FrameOwner::Dom(D2));
        assert!(ft.inspect(m).unwrap().writable());
    }

    #[test]
    fn cow_transfer_preserves_materialized_bytes() {
        // Regression: the transfer fast path must not clone (or worse,
        // rebuild) the page content — a materialized `Bytes` frame keeps
        // its exact buffer across the ownership flip.
        let mut ft = FrameTable::new(4);
        let m = ft.alloc(FrameOwner::Dom(D1)).unwrap();
        let payload: Vec<u8> = (0..PAGE_SIZE).map(|i| i as u8).collect();
        ft.write(m, 0, &payload).unwrap();
        assert!(matches!(ft.inspect(m).unwrap().content(), PageContent::Bytes(_)));
        ft.share_to_cow(m, D1, 1, false).unwrap();

        assert_eq!(ft.cow_fault(m, D2).unwrap(), CowResolution::Transferred);
        assert_eq!(ft.inspect(m).unwrap().owner(), FrameOwner::Dom(D2));
        let mut buf = vec![0u8; PAGE_SIZE];
        ft.read(m, 0, &mut buf).unwrap();
        assert_eq!(buf, payload);
    }

    #[test]
    fn reads_and_writes_are_bounds_checked_uniformly() {
        // Every content representation must reject a boundary-crossing
        // access the same way: Zero and Fill used to silently wrap while
        // Bytes panicked on the slice.
        let mut ft = FrameTable::new(4);
        let m = ft.alloc(FrameOwner::Dom(D1)).unwrap();
        let bounds = |offset, len| HvError::PageBounds { mfn: m, offset, len };
        let mut buf = [0u8; 16];

        for make in [
            |ft: &mut FrameTable, m| ft.set_content(m, PageContent::Zero).unwrap(),
            |ft: &mut FrameTable, m| ft.fill(m, 0xAB).unwrap(),
            |ft: &mut FrameTable, m| ft.write(m, 0, &[1]).unwrap(),
        ] {
            make(&mut ft, m);
            assert_eq!(ft.read(m, PAGE_SIZE - 8, &mut buf), Err(bounds(PAGE_SIZE - 8, 16)));
            assert_eq!(ft.read(m, PAGE_SIZE, &mut buf[..1]), Err(bounds(PAGE_SIZE, 1)));
            assert_eq!(ft.write(m, PAGE_SIZE - 1, &[9, 9]), Err(bounds(PAGE_SIZE - 1, 2)));
            // The last in-bounds slice still works.
            ft.write(m, PAGE_SIZE - 2, &[3, 4]).unwrap();
            ft.read(m, PAGE_SIZE - 2, &mut buf[..2]).unwrap();
            assert_eq!(&buf[..2], &[3, 4]);
        }

        // Offsets so large that `offset + len` overflows must not wrap.
        assert_eq!(
            ft.read(m, usize::MAX, &mut buf[..1]),
            Err(bounds(usize::MAX, 1))
        );
    }

    #[test]
    fn unshare_drop_frees_at_zero() {
        let mut ft = FrameTable::new(4);
        let m = ft.alloc(FrameOwner::Dom(D1)).unwrap();
        ft.share_to_cow(m, D1, 2, false).unwrap();
        ft.unshare_drop(m).unwrap();
        assert_eq!(ft.inspect(m).unwrap().owner(), FrameOwner::Cow);
        ft.unshare_drop(m).unwrap();
        assert_eq!(ft.inspect(m).unwrap().owner(), FrameOwner::Free);
        assert_eq!(ft.free_frames(), 4);
    }

    #[test]
    fn content_representations() {
        let mut ft = FrameTable::new(2);
        let m = ft.alloc(FrameOwner::Dom(D1)).unwrap();
        let mut buf = [1u8; 4];
        ft.read(m, 100, &mut buf).unwrap();
        assert_eq!(buf, [0; 4]);

        ft.fill(m, 0x0102_0304_0506_0708).unwrap();
        ft.read(m, 0, &mut buf).unwrap();
        assert_eq!(buf, [0x08, 0x07, 0x06, 0x05]);

        ft.write(m, 2, &[0xAA]).unwrap();
        ft.read(m, 0, &mut buf).unwrap();
        assert_eq!(buf, [0x08, 0x07, 0xAA, 0x05]);
    }

    #[test]
    fn copy_page_copies_content() {
        let mut ft = FrameTable::new(2);
        let a = ft.alloc(FrameOwner::Dom(D1)).unwrap();
        let b = ft.alloc(FrameOwner::Dom(D2)).unwrap();
        ft.write(a, 0, b"hello").unwrap();
        ft.copy_page(a, b).unwrap();
        let mut buf = [0u8; 5];
        ft.read(b, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"hello");
    }

    #[test]
    fn stats_track_cow_and_xen() {
        let mut ft = FrameTable::new(4);
        let a = ft.alloc(FrameOwner::Dom(D1)).unwrap();
        ft.alloc(FrameOwner::Xen).unwrap();
        ft.share_to_cow(a, D1, 2, false).unwrap();
        let s = ft.stats();
        assert_eq!(s.total, 4);
        assert_eq!(s.free, 2);
        assert_eq!(s.cow_shared, 1);
        assert_eq!(s.xen, 1);
    }

    #[test]
    fn stats_stay_consistent_across_transitions() {
        // Exercises every ownership transition; the debug_assert inside
        // stats() cross-checks the incremental counters against a scan.
        let mut ft = FrameTable::new(8);
        let a = ft.alloc(FrameOwner::Dom(D1)).unwrap();
        let x = ft.alloc(FrameOwner::Xen).unwrap();
        ft.share_to_cow(a, D1, 2, false).unwrap();
        assert_eq!(ft.stats().cow_shared, 1);
        assert_eq!(ft.stats().xen, 1);

        // COW fault with two sharers copies (original stays COW)...
        let CowResolution::Copied(copy) = ft.cow_fault(a, D2).unwrap() else {
            panic!("expected copy");
        };
        assert_eq!(ft.stats().cow_shared, 1);
        // ...and as last sharer transfers ownership away from dom_cow.
        assert_eq!(ft.cow_fault(a, D2).unwrap(), CowResolution::Transferred);
        assert_eq!(ft.stats().cow_shared, 0);

        ft.transfer(x, FrameOwner::Xen, FrameOwner::Dom(D1)).unwrap();
        assert_eq!(ft.stats().xen, 0);
        ft.free(copy, FrameOwner::Dom(D2)).unwrap();

        // A COW frame fully unshared returns to the free list.
        let b = ft.alloc(FrameOwner::Dom(D1)).unwrap();
        ft.share_to_cow(b, D1, 1, false).unwrap();
        assert_eq!(ft.stats().cow_shared, 1);
        ft.unshare_drop(b).unwrap();
        assert_eq!(ft.stats().cow_shared, 0);
    }

    #[test]
    fn shards_partition_the_frame_space() {
        for total in [1u64, 7, 8, 9, 64, 1000] {
            let ft = FrameTable::new(total);
            let mut covered = 0;
            let mut next_start = 0;
            for s in 0..FRAME_SHARDS {
                let r = ft.shard_range(s);
                assert!(r.start == next_start || r.is_empty(), "total={total} shard={s}");
                next_start = r.end;
                covered += r.end - r.start;
                for mfn in r.clone() {
                    assert_eq!(ft.shard_of(Mfn(mfn)), s, "total={total} mfn={mfn}");
                }
            }
            assert_eq!(covered, total, "shard ranges must cover every frame once");
        }
    }

    #[test]
    fn shard_counters_match_scan_after_transitions() {
        let mut ft = FrameTable::new(64); // shard_len = 8
        let mut owned = Vec::new();
        for _ in 0..20 {
            owned.push(ft.alloc(FrameOwner::Dom(D1)).unwrap());
        }
        for &m in &owned[..10] {
            ft.share_to_cow(m, D1, 2, false).unwrap();
        }
        ft.alloc(FrameOwner::Xen).unwrap();
        ft.cow_fault(owned[0], D2).unwrap();
        ft.unshare_drop(owned[1]).unwrap();
        assert_eq!(ft.shard_incremental_stats(), ft.scan_shard_stats());
        // The global view is the sum over shards.
        let s = ft.stats();
        let by_shard: u64 = ft.shard_incremental_stats().iter().map(|s| s.cow).sum();
        assert_eq!(s.cow_shared, by_shard);
    }

    #[test]
    fn shard_corruption_is_visible_to_the_shard_scan_only() {
        let mut ft = FrameTable::new(64);
        let a = ft.alloc(FrameOwner::Dom(D1)).unwrap();
        ft.share_to_cow(a, D1, 2, false).unwrap();
        // Compensated corruption: global sum unchanged, shards wrong.
        ft.corrupt_shard_counter_for_test(2, 1);
        ft.corrupt_shard_counter_for_test(5, -0); // no-op guard
        ft.corrupt_shard_counter_for_test(0, 0);
        let inc = ft.shard_incremental_stats();
        let scan = ft.scan_shard_stats();
        assert_ne!(inc, scan);
        assert_eq!(
            inc.iter().map(|s| s.cow).sum::<u64>(),
            scan.iter().map(|s| s.cow).sum::<u64>() + 1
        );
        ft.corrupt_shard_counter_for_test(2, -1);
        assert_eq!(ft.shard_incremental_stats(), ft.scan_shard_stats());
    }

    #[test]
    fn alloc_batch_matches_sequential_placement() {
        let mut a = FrameTable::new(16);
        let mut b = FrameTable::new(16);
        let batched = a
            .alloc_batch(&[(FrameOwner::Dom(D1), 3), (FrameOwner::Dom(D2), 2)])
            .unwrap();
        let seq1 = b.alloc_many(FrameOwner::Dom(D1), 3).unwrap();
        let seq2 = b.alloc_many(FrameOwner::Dom(D2), 2).unwrap();
        assert_eq!(batched, vec![seq1, seq2]);
        assert_eq!(a.free_frames(), b.free_frames());
        for mfn in batched.concat() {
            assert_eq!(
                a.inspect(mfn).unwrap().owner(),
                b.inspect(mfn).unwrap().owner()
            );
        }
    }

    #[test]
    fn alloc_batch_is_all_or_nothing() {
        let mut ft = FrameTable::new(4);
        let r = ft.alloc_batch(&[(FrameOwner::Dom(D1), 3), (FrameOwner::Dom(D2), 2)]);
        assert_eq!(r, Err(HvError::OutOfMemory));
        assert_eq!(ft.free_frames(), 4, "failed batch must not allocate");
        ft.alloc_batch(&[(FrameOwner::Dom(D1), 2), (FrameOwner::Dom(D2), 2)])
            .unwrap();
        assert_eq!(ft.free_frames(), 0);
    }

    #[test]
    fn whole_page_write_replaces_content_without_materializing() {
        let mut c = PageContent::Fill(0xDEAD_BEEF);
        let page = vec![0x5A; PAGE_SIZE];
        c.write(0, &page);
        assert_eq!(c, PageContent::Bytes(page.clone().into_boxed_slice()));
        // And through the frame table, on top of an unmaterialized frame.
        let mut ft = FrameTable::new(1);
        let m = ft.alloc(FrameOwner::Dom(D1)).unwrap();
        ft.write(m, 0, &page).unwrap();
        assert_eq!(ft.inspect(m).unwrap().content().byte_at(PAGE_SIZE - 1), 0x5A);
    }

    #[test]
    fn page_content_byte_at() {
        assert_eq!(PageContent::Zero.byte_at(10), 0);
        assert_eq!(PageContent::Fill(0xFF).byte_at(0), 0xFF);
        assert_eq!(PageContent::Fill(0xFF).byte_at(1), 0);
        let b = PageContent::Bytes(vec![9u8; PAGE_SIZE].into_boxed_slice());
        assert_eq!(b.byte_at(4095), 9);
    }
}

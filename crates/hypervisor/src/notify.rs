//! The clone notification ring shared between the hypervisor and the
//! `xencloned` daemon.
//!
//! After completing the first stage of a clone, the hypervisor fills an
//! entry in this ring and raises [`Virq::Cloned`](crate::event::Virq::Cloned)
//! to wake `xencloned` (§5, step 1.2). A full ring exerts *backpressure*:
//! further clone requests fail with
//! [`HvError::NotificationRingFull`]
//! until the daemon drains entries, slowing down the first stage as the
//! paper describes.

use sim_core::{DomId, Mfn};

use crate::error::{HvError, Result};

/// One clone notification: the minimum information `xencloned` needs to run
/// the second stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CloneNotification {
    /// The domain that was cloned.
    pub parent: DomId,
    /// The freshly created child.
    pub child: DomId,
    /// Machine frame of the parent's `start_info` page.
    pub parent_start_info: Mfn,
    /// Machine frame of the child's (rewritten) `start_info` page.
    pub child_start_info: Mfn,
}

/// Fixed-capacity notification ring.
#[derive(Debug)]
pub struct NotificationRing {
    entries: Vec<CloneNotification>,
    capacity: usize,
}

impl NotificationRing {
    /// Default ring capacity (one shared page of entries).
    pub const DEFAULT_CAPACITY: usize = 128;

    /// Creates a ring with the given capacity.
    pub fn new(capacity: usize) -> Self {
        NotificationRing {
            entries: Vec::new(),
            capacity: capacity.max(1),
        }
    }

    /// Pushes a notification; fails when the ring is full (backpressure).
    pub fn push(&mut self, n: CloneNotification) -> Result<()> {
        if self.entries.len() >= self.capacity {
            return Err(HvError::NotificationRingFull);
        }
        self.entries.push(n);
        Ok(())
    }

    /// Pops the oldest notification, if any (consumer side).
    pub fn pop(&mut self) -> Option<CloneNotification> {
        if self.entries.is_empty() {
            None
        } else {
            Some(self.entries.remove(0))
        }
    }

    /// Number of queued notifications.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the ring is at capacity.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Total capacity of the ring.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Iterates over the queued notifications, oldest first (used by the
    /// state auditor to check pending entries against live domains).
    pub fn pending(&self) -> impl Iterator<Item = &CloneNotification> {
        self.entries.iter()
    }

    /// Slots still available before the ring exerts backpressure. The
    /// batched clone first stage checks this for all N children up front,
    /// so a multi-clone call never fails halfway through.
    pub fn free_slots(&self) -> usize {
        self.capacity.saturating_sub(self.entries.len())
    }
}

impl Default for NotificationRing {
    fn default() -> Self {
        Self::new(Self::DEFAULT_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(p: u32, c: u32) -> CloneNotification {
        CloneNotification {
            parent: DomId(p),
            child: DomId(c),
            parent_start_info: Mfn(0),
            child_start_info: Mfn(1),
        }
    }

    #[test]
    fn fifo_order() {
        let mut r = NotificationRing::new(4);
        r.push(n(1, 2)).unwrap();
        r.push(n(1, 3)).unwrap();
        assert_eq!(r.pop().unwrap().child, DomId(2));
        assert_eq!(r.pop().unwrap().child, DomId(3));
        assert!(r.pop().is_none());
    }

    #[test]
    fn backpressure_when_full() {
        let mut r = NotificationRing::new(2);
        r.push(n(1, 2)).unwrap();
        r.push(n(1, 3)).unwrap();
        assert!(r.is_full());
        assert_eq!(r.push(n(1, 4)), Err(HvError::NotificationRingFull));
        r.pop().unwrap();
        r.push(n(1, 4)).unwrap();
    }

    #[test]
    fn free_slots_track_occupancy() {
        let mut r = NotificationRing::new(3);
        assert_eq!(r.capacity(), 3);
        assert_eq!(r.free_slots(), 3);
        r.push(n(1, 2)).unwrap();
        assert_eq!(r.free_slots(), 2);
        r.push(n(1, 3)).unwrap();
        r.push(n(1, 4)).unwrap();
        assert_eq!(r.free_slots(), 0);
        r.pop().unwrap();
        assert_eq!(r.free_slots(), 1);
    }

    #[test]
    fn capacity_is_at_least_one() {
        let mut r = NotificationRing::new(0);
        r.push(n(1, 2)).unwrap();
        assert!(r.is_full());
    }
}

//! The `CLONEOP` hypercall: Nephele's single hypervisor interface extension.
//!
//! Following the paper's design goal of keeping new interfaces to a minimum
//! (§5.1), every cloning-related operation is a subcommand of one hypercall:
//!
//! * [`CloneOp::Clone`] — run the first stage for one or more clones. Called
//!   by a guest to clone itself (the `fork()` path) or by Dom0 with an
//!   explicit target (the VM-fuzzing path).
//! * [`CloneOp::Completion`] — `xencloned` signals that the second stage of
//!   a child finished; the parent resumes once all its pending children
//!   completed.
//! * [`CloneOp::SetGlobalEnabled`] — global cloning switch, owned by
//!   `xencloned`.
//! * [`CloneOp::CloneCow`] — explicitly trigger COW for chosen pages so KFX
//!   can insert breakpoints into a clone's code pages (§7.2).
//! * [`CloneOp::Checkpoint`] / [`CloneOp::CloneReset`] — snapshot and
//!   restore a clone's memory and vCPU state between fuzzing iterations
//!   (§7.2; the reset cost scales with the number of dirty pages).

use sim_core::{DomId, Mfn, Pfn};

use crate::domain::{Checkpoint, Domain, DomainState, PrivatePolicy};
use crate::error::{HvError, Result};
use crate::event::Channel;
use crate::memory::{CowResolution, FrameOwner};
use crate::notify::CloneNotification;
use crate::vcpu::Vcpu;
use crate::Hypervisor;

/// Subcommands of the `CLONEOP` hypercall.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CloneOp {
    /// First-stage cloning of `target` (or of the caller when `None`),
    /// creating `nr_clones` children.
    Clone {
        /// Domain to clone; `None` means the calling guest clones itself.
        /// Only Dom0 may name an explicit target (e.g. for VM fuzzing).
        target: Option<DomId>,
        /// Number of children to create in this call.
        nr_clones: u32,
    },
    /// Second-stage completion notification for `child` (Dom0 only).
    Completion {
        /// The child whose I/O cloning finished.
        child: DomId,
    },
    /// Enable or disable cloning globally (Dom0 only).
    SetGlobalEnabled(bool),
    /// Explicitly break COW for the given pages of a clone so breakpoints
    /// can be written (Dom0 only).
    CloneCow {
        /// The clone to operate on.
        dom: DomId,
        /// Guest frames to privatize.
        pfns: Vec<Pfn>,
    },
    /// Record the clone's current memory/vCPU state as the reset target
    /// (Dom0 only).
    Checkpoint {
        /// The clone to checkpoint.
        dom: DomId,
    },
    /// Restore the clone to its checkpoint (Dom0 only).
    CloneReset {
        /// The clone to reset.
        dom: DomId,
    },
}

/// Result of a `CLONEOP` invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CloneOpResult {
    /// Domain ids of the created children, in creation order (the array the
    /// parent passed to the hypercall, §5.1).
    Cloned(Vec<DomId>),
    /// Pages restored by a [`CloneOp::CloneReset`].
    Reset {
        /// Dirty pages that had to be restored.
        dirty_pages: u64,
    },
    /// The subcommand completed with nothing to report.
    Done,
}

/// Static span-attribute name of a subcommand.
fn op_name(op: &CloneOp) -> &'static str {
    match op {
        CloneOp::Clone { .. } => "clone",
        CloneOp::Completion { .. } => "completion",
        CloneOp::SetGlobalEnabled(_) => "set_global_enabled",
        CloneOp::CloneCow { .. } => "clone_cow",
        CloneOp::Checkpoint { .. } => "checkpoint",
        CloneOp::CloneReset { .. } => "clone_reset",
    }
}

impl Hypervisor {
    /// Dispatches a `CLONEOP` hypercall issued by `caller`.
    ///
    /// On top of the dispatch itself this is the instrumentation boundary
    /// for the whole first stage: successful [`CloneOp::Clone`] calls feed
    /// the `clone.stage1` latency histogram, and *any* failed subcommand
    /// bumps the `clone.fail` counter (previously only successes were
    /// counted anywhere on the clone path).
    pub fn cloneop(&mut self, caller: DomId, op: CloneOp) -> Result<CloneOpResult> {
        let is_clone = matches!(op, CloneOp::Clone { .. });
        let start = self.clock().now();
        let result = self.cloneop_inner(caller, op);
        match &result {
            Ok(_) if is_clone => {
                let elapsed = self.clock().now().since(start).as_ns();
                self.trace().record_ns("clone.stage1", elapsed);
            }
            Ok(_) => {}
            Err(_) => self.trace().count("clone.fail", 1),
        }
        result
    }

    fn cloneop_inner(&mut self, caller: DomId, op: CloneOp) -> Result<CloneOpResult> {
        let span = self.trace().span("hv.cloneop");
        span.attr("caller", caller.0);
        span.attr("op", op_name(&op));
        self.clock().advance(self.costs().hypercall_base);
        match op {
            CloneOp::Clone { target, nr_clones } => {
                let parent = match target {
                    None => {
                        if caller.is_dom0() {
                            return Err(HvError::InvalidArg("dom0 cannot clone itself"));
                        }
                        caller
                    }
                    Some(t) => {
                        if !caller.is_dom0() {
                            return Err(HvError::Denied);
                        }
                        t
                    }
                };
                if nr_clones == 0 {
                    return Err(HvError::InvalidArg("nr_clones == 0"));
                }
                self.clone_domains(parent, nr_clones).map(CloneOpResult::Cloned)
            }
            CloneOp::Completion { child } => {
                if !caller.is_dom0() {
                    return Err(HvError::Denied);
                }
                self.clone_completion(child)?;
                Ok(CloneOpResult::Done)
            }
            CloneOp::SetGlobalEnabled(on) => {
                if !caller.is_dom0() {
                    return Err(HvError::Denied);
                }
                self.set_cloning_enabled(on);
                Ok(CloneOpResult::Done)
            }
            CloneOp::CloneCow { dom, pfns } => {
                if !caller.is_dom0() {
                    return Err(HvError::Denied);
                }
                self.clone_cow(dom, &pfns)?;
                Ok(CloneOpResult::Done)
            }
            CloneOp::Checkpoint { dom } => {
                if !caller.is_dom0() {
                    return Err(HvError::Denied);
                }
                self.clone_checkpoint(dom)?;
                Ok(CloneOpResult::Done)
            }
            CloneOp::CloneReset { dom } => {
                if !caller.is_dom0() {
                    return Err(HvError::Denied);
                }
                let dirty = self.clone_reset(dom)?;
                Ok(CloneOpResult::Reset { dirty_pages: dirty })
            }
        }
    }

    fn clone_domains(&mut self, parent: DomId, nr: u32) -> Result<Vec<DomId>> {
        if !self.cloning_enabled() {
            return Err(HvError::CloningDisabled(parent));
        }
        {
            let p = self.domain(parent)?;
            if !p.clone_policy.enabled {
                return Err(HvError::CloningDisabled(parent));
            }
            if p.clones_created + nr > p.clone_policy.max_clones {
                return Err(HvError::CloneLimit(parent));
            }
        }
        let children = self.clone_batch(parent, nr)?;
        // The hypercall returns 0 in the parent's rax, 1 in each child's.
        if let Some(v) = self.domain_mut(parent)?.vcpus.get_mut(0) {
            v.regs.rax = 0;
        }
        Ok(children)
    }

    /// Runs the complete first stage for `nr` children of `parent` in one
    /// batch (§4.1, §5.2): the parent is snapshotted **once**, every mapped
    /// pfn is classified in a **single** walk, shared pages get one
    /// refcount transition covering all children, and each child's p2m is
    /// stamped from the shared template with only the private slots
    /// patched. Host complexity drops from O(N·M) for the naive per-child
    /// loop to O(M + N·P) (M mapped pages, P private pages), while
    /// virtual-time charges, frame placement, domain ids and names are
    /// bit-identical to N sequential single clones.
    ///
    /// The call is atomic: ring capacity and the frame budget for all
    /// children are validated before the first mutation, so a failing
    /// batch leaves the parent, the frame table and the ring untouched.
    fn clone_batch(&mut self, parent_id: DomId, nr: u32) -> Result<Vec<DomId>> {
        let span = self.trace().span("clone.batch");
        span.attr("parent", parent_id.0);
        span.attr("nr", nr);

        // ---- Validation phase: nothing below this comment may mutate
        // hypervisor state until every check has passed. ----

        // Backpressure: the ring must have room for the whole batch up
        // front (§5) — a mid-batch full ring would strand earlier children
        // with the parent paused.
        if self.clone_ring().free_slots() < nr as usize {
            return Err(HvError::NotificationRingFull);
        }

        // Snapshot the parent state all children are built from — once.
        let (p2m, private_pfns, idc_pfns, vcpus, grants, evtchn, parent_meta) = {
            let p = self.domain(parent_id)?;
            if p.state == DomainState::Dying {
                return Err(HvError::BadDomainState(parent_id));
            }
            (
                p.p2m.clone(),
                p.private_pfns.clone(),
                p.idc_pfns.clone(),
                p.vcpus.clone(),
                p.grants.clone(),
                p.evtchn.clone(),
                (
                    p.name.clone(),
                    p.clones_created,
                    p.start_info_pfn,
                    p.xenstore_pfn,
                    p.console_pfn,
                    p.clone_policy,
                ),
            )
        };
        let (parent_name, clone_seq, start_info_pfn, xenstore_pfn, console_pfn, policy) =
            parent_meta;

        /// How a shared (non-private) mapped page joins the batch.
        enum SharedKind {
            /// Owned by the parent: one ownership transfer to `dom_cow`
            /// covering every child (IDC pages stay writable-shared).
            First { idc: bool },
            /// Already COW — the parent is itself a clone, or the same
            /// frame appeared at an earlier pfn of this walk: refcount
            /// bump only.
            Bump,
        }

        // Single classification walk over the p2m. `first_shared` tracks
        // frames this walk will move to dom_cow, so a frame mapped at two
        // pfns is first-shared once and bumped at its second slot —
        // exactly what N sequential walks would produce.
        let mut private_slots: Vec<(usize, PrivatePolicy, Mfn)> = Vec::new();
        let mut shared_slots: Vec<(Mfn, SharedKind)> = Vec::new();
        let mut first_shared = std::collections::HashSet::new();
        for (i, slot) in p2m.iter().enumerate() {
            let Some(mfn) = slot else { continue };
            let pfn = Pfn(i as u64);
            if let Some(policy) = private_pfns.get(&pfn) {
                private_slots.push((i, *policy, mfn));
                continue;
            }
            match self.frames().inspect(mfn)?.owner() {
                FrameOwner::Dom(d) if d == parent_id => {
                    if first_shared.insert(mfn.0) {
                        let idc = idc_pfns.contains(&pfn);
                        shared_slots.push((mfn, SharedKind::First { idc }));
                    } else {
                        shared_slots.push((mfn, SharedKind::Bump));
                    }
                }
                FrameOwner::Cow => shared_slots.push((mfn, SharedKind::Bump)),
                _ => return Err(HvError::BadOwner(mfn)),
            }
        }

        let mapped = (private_slots.len() + shared_slots.len()) as u64;
        let private_count = private_slots.len() as u64;
        let aux_count =
            Domain::pt_frames_needed(p2m.len() as u64) + Domain::p2m_frames_needed(p2m.len() as u64);
        let per_child = private_count + aux_count;
        span.attr("mapped", mapped);
        span.attr("private", private_count);

        // Frame budget for the whole batch, before the first allocation.
        if self.frames().free_frames() < per_child.saturating_mul(nr as u64) {
            return Err(HvError::OutOfMemory);
        }

        // ---- Apply phase: infallible from here on. ----

        let costs = self.costs().clone();
        self.clock()
            .advance(costs.clone_stage1_base.saturating_mul(nr as u64));

        // Cloning invalidates an armed KFX checkpoint: the private pages
        // its journals describe (and the post-fault copies the dirty_cow
        // entries would free) are about to become COW-shared with the
        // children, so the checkpoint no longer names restorable private
        // state. Disarm it, releasing the journal's keep-alive
        // references.
        if let Some(cp) = self.domain_mut(parent_id).expect("validated above").checkpoint.take()
        {
            self.release_checkpoint_refs(&cp)
                .expect("journal references are live by construction");
        }

        // Domain ids in the order the sequential path would allocate them.
        let child_ids: Vec<DomId> = (0..nr).map(|_| DomId(self.alloc_domid())).collect();

        // One bulk allocation covering every child's private + auxiliary
        // frames, sliced per child in sequential order so frame placement
        // is identical to N single clones.
        let requests: Vec<(FrameOwner, u64)> = child_ids
            .iter()
            .map(|c| (FrameOwner::Dom(*c), per_child))
            .collect();
        let per_child_frames = self
            .frames_mut()
            .alloc_batch(&requests)
            .expect("frame budget pre-validated");

        // Shared pages: one refcount transition per frame for the whole
        // batch, charging exactly what N sequential walks would charge.
        {
            let cspan = self.trace().span("clone.cow_convert");
            cspan.attr("pages", shared_slots.len());
            cspan.attr("nr", nr);
            let n = nr as u64;
            for (mfn, kind) in &shared_slots {
                match kind {
                    SharedKind::First { idc } => {
                        self.frames_mut()
                            .share_to_cow(*mfn, parent_id, nr.saturating_add(1), *idc)
                            .expect("classified as parent-owned");
                        self.clock().advance(costs.clone_share_per_page);
                        self.clock()
                            .advance(costs.clone_reshare_per_page.saturating_mul(n - 1));
                    }
                    SharedKind::Bump => {
                        self.frames_mut()
                            .reshare(*mfn, nr)
                            .expect("classified as COW");
                        self.clock()
                            .advance(costs.clone_reshare_per_page.saturating_mul(n));
                    }
                }
            }
        }

        // Parent-side DOMID_CHILD channels become child→parent channels at
        // the same port in every child; computed once from the snapshot.
        let mut idc_ports = Vec::new();
        for (port, ch) in evtchn.iter_active() {
            if let Channel::Interdomain { remote_dom, .. } = ch {
                if *remote_dom == DomId::CHILD {
                    idc_ports.push(port);
                }
            }
        }

        let parent_start_info = p2m.get(start_info_pfn.0 as usize).unwrap_or(Mfn(0));

        // ---- Stamp phase: every child's private-page images, vCPU file,
        // grant/event tables, p2m patch list and name are pure functions
        // of the frozen parent snapshot, the (no longer mutated) frame
        // table and the child's pre-assigned id + frame slice — so the
        // batch fans out across the pool's host workers. Results come
        // back in child-index order; all clock charges, trace spans and
        // hypervisor mutations happen in the ordered commit loop below,
        // which keeps virtual time, the trace and every id byte-identical
        // at any thread count (the default pool runs this inline).
        struct StampedChild {
            aux_frames: Vec<Mfn>,
            vcpus: Vec<Vcpu>,
            /// `(dst, image)` pairs to install — `Copy`/`Rewrite` slots only.
            installs: Vec<(Mfn, crate::memory::PageContent)>,
            patches: Vec<(u64, Option<Mfn>)>,
            child_start_info: Mfn,
            grants: crate::grant::GrantTable,
            evtchn: crate::event::EventChannels,
            name: String,
        }

        let stamped: Vec<StampedChild> = {
            let pool = self.pool();
            let frames = self.frames();
            let batch: Vec<(DomId, Vec<Mfn>)> =
                child_ids.iter().copied().zip(per_child_frames).collect();
            let private_slots = &private_slots;
            let idc_ports = &idc_ports;
            let parent_name = parent_name.as_str();
            pool.map(batch, move |k, (child_id, mut fresh)| {
                let aux_frames: Vec<Mfn> = fresh.split_off(private_count as usize);

                // vCPUs: registers and affinity replicated; rax = 1 in
                // the child.
                let child_vcpus: Vec<Vcpu> =
                    vcpus.iter().map(Vcpu::clone_for_child).collect();

                // Private pages: build each child's page images from the
                // parent frames. Equivalent to `copy_page` (+ `write` for
                // the id rewrite) against the child's fresh frame, but
                // computed against the immutable snapshot so workers need
                // no access to the mutable frame table.
                let mut installs = Vec::new();
                let mut patches: Vec<(u64, Option<Mfn>)> =
                    Vec::with_capacity(private_slots.len());
                let mut remaps: Vec<(Mfn, Mfn)> =
                    Vec::with_capacity(private_slots.len());
                let mut child_start_info = Mfn(0);
                for (&(i, policy, mfn), &new) in private_slots.iter().zip(&fresh) {
                    match policy {
                        PrivatePolicy::Copy => {
                            let img = frames
                                .inspect(mfn)
                                .expect("snapshot frames exist")
                                .content()
                                .clone();
                            installs.push((new, img));
                        }
                        PrivatePolicy::Fresh => {}
                        PrivatePolicy::Rewrite => {
                            let mut img = frames
                                .inspect(mfn)
                                .expect("snapshot frames exist")
                                .content()
                                .clone();
                            // Rewrite the embedded domain id reference.
                            img.write(0, &child_id.0.to_le_bytes());
                            installs.push((new, img));
                        }
                    }
                    patches.push((i as u64, Some(new)));
                    remaps.push((mfn, new));
                    if i as u64 == start_info_pfn.0 {
                        child_start_info = new;
                    }
                }

                // Grant table: replicate, re-pointing grants of private
                // frames.
                let mut child_grants = grants.clone_for_child();
                for (old, new) in &remaps {
                    child_grants.rewrite_frame(*old, *new);
                }

                // Event channels: replicate, then rewrite the IDC ports
                // so the fan-out map reaches this child.
                let mut child_evtchn = evtchn.clone_for_child();
                for &port in idc_ports {
                    child_evtchn
                        .replace(
                            port,
                            Channel::Interdomain {
                                remote_dom: parent_id,
                                remote_port: port,
                            },
                        )
                        .expect("IDC port exists in the replicated table");
                }

                StampedChild {
                    aux_frames,
                    vcpus: child_vcpus,
                    installs,
                    patches,
                    child_start_info,
                    grants: child_grants,
                    evtchn: child_evtchn,
                    name: format!("{parent_name}-clone{}", clone_seq + 1 + k as u32),
                }
            })
        };

        // ---- Commit phase: sequential, in child-index order. The spans
        // and clock charges below reproduce the single-threaded loop
        // exactly: only span start/end stamps observe the clock, so the
        // per-page charges may be applied as one aggregate advance.
        let mut children = Vec::with_capacity(nr as usize);
        let mut notifications = Vec::with_capacity(nr as usize);
        for (&child_id, st) in child_ids.iter().zip(stamped) {
            let child_span = self.trace().span("clone.child");
            child_span.attr("child", child_id.0);
            let StampedChild {
                aux_frames,
                vcpus: child_vcpus,
                installs,
                patches,
                child_start_info,
                grants: child_grants,
                evtchn: child_evtchn,
                name,
            } = st;

            {
                let vspan = self.trace().span("clone.vcpu_copy");
                vspan.attr("vcpus", child_vcpus.len());
                self.clock()
                    .advance(costs.vcpu_init.saturating_mul(child_vcpus.len() as u64));
            }

            {
                let pspan = self.trace().span("clone.private_pages");
                pspan.attr("pages", private_count);
                for (dst, img) in installs {
                    self.frames_mut()
                        .set_content(dst, img)
                        .expect("freshly allocated frame is writable");
                }
                self.clock()
                    .advance(costs.clone_private_page.saturating_mul(private_count));
            }

            // The child p2m is an `Rc` handle on the family template —
            // every shared slot already points at the (now COW) parent
            // frame through the shared base — plus a thin overlay
            // patching only the P private slots.
            let child_p2m = p2m.child_with_patches(patches);

            // Rebuild the child page table from the p2m (§5.2: "p2m ... is
            // used and updated on cloning when building the child page
            // table").
            {
                let tspan = self.trace().span("clone.pt_rebuild");
                tspan.attr("mapped", mapped);
                self.clock()
                    .advance(costs.clone_pt_build_per_page.saturating_mul(mapped));
                self.clock().advance(
                    costs
                        .clone_private_page
                        .saturating_mul(Domain::p2m_frames_needed(p2m.len() as u64)),
                );
            }

            let child = Domain {
                id: child_id,
                name,
                parent: Some(parent_id),
                state: DomainState::PausedAfterClone,
                vcpus: child_vcpus,
                p2m: child_p2m,
                aux_frames,
                private_pfns: private_pfns.clone(),
                idc_pfns: idc_pfns.clone(),
                start_info_pfn,
                xenstore_pfn,
                console_pfn,
                clone_policy: policy,
                clones_created: 0,
                children: Vec::new(),
                pending_stage2: 0,
                grants: child_grants,
                evtchn: child_evtchn,
                checkpoint: None,
            };
            self.insert_domain(child);
            for &port in &idc_ports {
                self.bind_child_channel(parent_id, port, child_id, port);
            }
            notifications.push(CloneNotification {
                parent: parent_id,
                child: child_id,
                parent_start_info,
                child_start_info,
            });
            children.push(child_id);
        }

        // Parent bookkeeping: paused until every second stage completes.
        {
            let p = self.domain_mut(parent_id).expect("parent snapshotted above");
            p.children.extend_from_slice(&children);
            p.clones_created += nr;
            p.pending_stage2 += nr;
            p.state = DomainState::PausedForClone;
        }

        // Notify xencloned, one entry + VIRQ per child (steps 1.2 in
        // Fig. 1) — capacity was reserved up front.
        for n in notifications {
            self.clone_ring()
                .push(n)
                .expect("ring capacity pre-validated");
            self.raise_virq(DomId::DOM0, crate::event::Virq::Cloned);
        }
        Ok(children)
    }

    fn clone_completion(&mut self, child: DomId) -> Result<()> {
        let (parent_id, resume_child) = {
            let c = self.domain(child)?;
            (
                c.parent.ok_or(HvError::InvalidArg("not a clone"))?,
                c.clone_policy.resume_children,
            )
        };
        {
            let c = self.domain_mut(child)?;
            c.state = if resume_child {
                DomainState::Running
            } else {
                DomainState::Paused
            };
        }
        let p = self.domain_mut(parent_id)?;
        if p.pending_stage2 == 0 {
            return Err(HvError::BadDomainState(parent_id));
        }
        p.pending_stage2 -= 1;
        if p.pending_stage2 == 0 && p.state == DomainState::PausedForClone {
            p.state = DomainState::Running;
        }
        Ok(())
    }

    fn clone_cow(&mut self, dom: DomId, pfns: &[Pfn]) -> Result<()> {
        for pfn in pfns {
            let mfn = self
                .domain(dom)?
                .lookup(*pfn)
                .ok_or(HvError::NotMapped(dom, *pfn))?;
            if self.frames().inspect(mfn)?.owner() == FrameOwner::Cow {
                // Privatization dirties the page exactly like a write
                // fault, so an armed checkpoint must journal it too —
                // otherwise reset would leak the divergence. The
                // pre-fault writability matters for the transfer
                // journal: `clone_cow` may privatize writable-shared
                // (IDC) pages, which the write-fault path never sees.
                let was_writable = self.frames().inspect(mfn)?.writable();
                match self.frames_mut().cow_fault(mfn, dom)? {
                    CowResolution::Copied(copy) => {
                        self.clock().advance(self.costs().cow_fault_copy);
                        self.domain_mut(dom)?.p2m.set(pfn.0 as usize, Some(copy));
                        self.journal_cow_copy(dom, *pfn, mfn)?;
                    }
                    CowResolution::Transferred => {
                        self.clock().advance(self.costs().cow_fault_transfer);
                        self.journal_transfer_fault(dom, *pfn, mfn, was_writable)?;
                    }
                }
            }
        }
        Ok(())
    }

    fn clone_checkpoint(&mut self, dom: DomId) -> Result<()> {
        // Re-checkpointing drops the previous checkpoint and the
        // keep-alive references its journal held.
        if let Some(old) = self.domain_mut(dom)?.checkpoint.take() {
            self.release_checkpoint_refs(&old)?;
        }
        // O(1) in the domain's memory: the p2m layout is captured as a
        // structural overlay snapshot and page contents are journaled
        // lazily on first dirty (see `Checkpoint`) — no walk over the
        // private pages, no content clones.
        let d = self.domain_mut(dom)?;
        let overlay = d.p2m.overlay_snapshot();
        let vcpus = d.vcpus.clone();
        d.checkpoint = Some(Checkpoint {
            dirty_cow: Default::default(),
            dirty_private: Default::default(),
            dirty_transfer: Default::default(),
            overlay,
            vcpus,
        });
        Ok(())
    }

    fn clone_reset(&mut self, dom: DomId) -> Result<u64> {
        let costs = self.costs().clone();
        self.clock().advance(costs.kfx_reset_base);
        let mut cp = self
            .domain_mut(dom)?
            .checkpoint
            .take()
            .ok_or(HvError::InvalidArg("no checkpoint"))?;

        let mut dirty = 0u64;
        // Re-point COW-faulted pages back at their shared originals. The
        // journal's keep-alive reference becomes the p2m's reference, so
        // no reshare is needed on the re-point.
        let dirty_cow = std::mem::take(&mut cp.dirty_cow);
        for (pfn, orig) in dirty_cow {
            let cur = self
                .domain(dom)?
                .lookup(pfn)
                .ok_or(HvError::NotMapped(dom, pfn))?;
            if cur != orig {
                self.frames_mut().free(cur, FrameOwner::Dom(dom))?;
                self.domain_mut(dom)?.p2m.set(pfn.0 as usize, Some(orig));
                self.clock().advance(costs.kfx_reset_per_page);
                dirty += 1;
            } else {
                // The slot already points at the shared frame: no
                // restore work is done, so no time is charged and the
                // page is not counted dirty — only the journal's
                // reference is returned.
                self.frames_mut().unshare_drop(orig)?;
            }
        }
        // Un-do last-sharer transfers: restore the pre-fault content and
        // hand the frame back to dom_cow as its original single-sharer
        // page.
        let dirty_transfer = std::mem::take(&mut cp.dirty_transfer);
        for (pfn, (content, writable)) in dirty_transfer {
            let mfn = self
                .domain(dom)?
                .lookup(pfn)
                .ok_or(HvError::NotMapped(dom, pfn))?;
            self.frames_mut().set_content(mfn, content)?;
            self.frames_mut().share_to_cow(mfn, dom, 1, writable)?;
            self.clock().advance(costs.kfx_reset_per_page);
            dirty += 1;
        }
        // Restore dirtied private pages from their journaled pre-images
        // (O(dirty): only pages the write path actually touched).
        let dirty_private = std::mem::take(&mut cp.dirty_private);
        for (pfn, saved) in dirty_private {
            let mfn = self
                .domain(dom)?
                .lookup(pfn)
                .ok_or(HvError::NotMapped(dom, pfn))?;
            if self.frames().inspect(mfn)?.content() != &saved {
                self.frames_mut().set_content(mfn, saved)?;
                self.clock().advance(costs.kfx_reset_per_page);
                dirty += 1;
            }
        }

        let d = self.domain_mut(dom)?;
        // With every divergence undone the overlay has shrunk back to
        // its checkpoint form; swap in the snapshot `Rc` so the storage
        // is shared again, not just equal. Non-journaled p2m changes
        // (e.g. a grant mapped mid-iteration) survive the reset, in
        // which case the re-armed checkpoint adopts the current layout.
        if *d.p2m.overlay_snapshot() == *cp.overlay {
            d.p2m.restore_overlay(cp.overlay.clone());
        } else {
            cp.overlay = d.p2m.overlay_snapshot();
        }
        // Restore vCPU state and re-arm for the next iteration.
        d.vcpus = cp.vcpus.clone();
        d.checkpoint = Some(cp);
        Ok(dirty)
    }
}

#[cfg(test)]
mod tests {
    use std::rc::Rc;

    use sim_core::{Clock, CostModel};

    use super::*;
    use crate::domain::ClonePolicy;
    use crate::MachineConfig;

    fn hv() -> Hypervisor {
        let mut hv = Hypervisor::new(
            Clock::new(),
            Rc::new(CostModel::free()),
            &MachineConfig {
                guest_pool_mib: 256,
                cores: 4,
                notification_ring_capacity: 16,
            },
        );
        hv.set_cloning_enabled(true);
        hv
    }

    fn cloneable_guest(hv: &mut Hypervisor, max_clones: u32) -> DomId {
        let d = hv.create_domain("guest", 4, 1).unwrap();
        hv.set_clone_policy(
            d,
            ClonePolicy {
                enabled: true,
                max_clones,
                resume_children: true,
            },
        )
        .unwrap();
        hv.unpause(d).unwrap();
        d
    }

    fn do_clone(hv: &mut Hypervisor, parent: DomId, nr: u32) -> Vec<DomId> {
        match hv
            .cloneop(
                parent,
                CloneOp::Clone {
                    target: None,
                    nr_clones: nr,
                },
            )
            .unwrap()
        {
            CloneOpResult::Cloned(c) => c,
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn basic_clone_creates_paused_child_and_pauses_parent() {
        let mut hv = hv();
        let p = cloneable_guest(&mut hv, 4);
        let children = do_clone(&mut hv, p, 1);
        assert_eq!(children.len(), 1);
        let c = children[0];
        assert_eq!(hv.domain(c).unwrap().state, DomainState::PausedAfterClone);
        assert_eq!(hv.domain(p).unwrap().state, DomainState::PausedForClone);
        assert_eq!(hv.domain(c).unwrap().parent, Some(p));
        // rax: 0 in parent, 1 in child.
        assert_eq!(hv.domain(p).unwrap().vcpus[0].regs.rax, 0);
        assert_eq!(hv.domain(c).unwrap().vcpus[0].regs.rax, 1);
        // A notification was queued and the VIRQ raised.
        assert_eq!(hv.clone_ring_len(), 1);
    }

    #[test]
    fn completion_resumes_parent_and_child() {
        let mut hv = hv();
        let p = cloneable_guest(&mut hv, 4);
        let c = do_clone(&mut hv, p, 1)[0];
        hv.cloneop(DomId::DOM0, CloneOp::Completion { child: c })
            .unwrap();
        assert_eq!(hv.domain(p).unwrap().state, DomainState::Running);
        assert_eq!(hv.domain(c).unwrap().state, DomainState::Running);
    }

    #[test]
    fn cloning_requires_global_and_domain_enable() {
        let mut hv = hv();
        hv.set_cloning_enabled(false);
        let p = cloneable_guest(&mut hv, 4);
        let r = hv.cloneop(
            p,
            CloneOp::Clone {
                target: None,
                nr_clones: 1,
            },
        );
        assert_eq!(r, Err(HvError::CloningDisabled(p)));

        hv.set_cloning_enabled(true);
        let q = hv.create_domain("other", 4, 1).unwrap();
        hv.unpause(q).unwrap();
        let r = hv.cloneop(
            q,
            CloneOp::Clone {
                target: None,
                nr_clones: 1,
            },
        );
        assert_eq!(r, Err(HvError::CloningDisabled(q)));
    }

    #[test]
    fn clone_limit_enforced() {
        let mut hv = hv();
        let p = cloneable_guest(&mut hv, 2);
        do_clone(&mut hv, p, 2);
        let r = hv.cloneop(
            p,
            CloneOp::Clone {
                target: None,
                nr_clones: 1,
            },
        );
        assert_eq!(r, Err(HvError::CloneLimit(p)));
    }

    #[test]
    fn memory_is_shared_and_cow_diverges() {
        let mut hv = hv();
        let p = cloneable_guest(&mut hv, 4);
        hv.write_page(p, Pfn(7), 0, b"parent-data").unwrap();
        let c = do_clone(&mut hv, p, 1)[0];

        // Same machine frame backs both p2m entries.
        let pm = hv.domain(p).unwrap().lookup(Pfn(7)).unwrap();
        let cm = hv.domain(c).unwrap().lookup(Pfn(7)).unwrap();
        assert_eq!(pm, cm);
        assert_eq!(hv.frames().inspect(pm).unwrap().owner(), FrameOwner::Cow);
        assert_eq!(hv.frames().inspect(pm).unwrap().refcount(), 2);

        // Child reads the parent's data.
        let mut buf = [0u8; 11];
        hv.read_page(c, Pfn(7), 0, &mut buf).unwrap();
        assert_eq!(&buf, b"parent-data");

        // Child writes: COW copy; parent unaffected.
        hv.write_page(c, Pfn(7), 0, b"child-data!").unwrap();
        let cm2 = hv.domain(c).unwrap().lookup(Pfn(7)).unwrap();
        assert_ne!(cm2, pm);
        hv.read_page(p, Pfn(7), 0, &mut buf).unwrap();
        assert_eq!(&buf, b"parent-data");
        hv.read_page(c, Pfn(7), 0, &mut buf).unwrap();
        assert_eq!(&buf, b"child-data!");
    }

    #[test]
    fn private_pages_are_not_shared() {
        let mut hv = hv();
        let p = cloneable_guest(&mut hv, 4);
        let si = hv.domain(p).unwrap().start_info_pfn;
        let c = do_clone(&mut hv, p, 1)[0];
        let pm = hv.domain(p).unwrap().lookup(si).unwrap();
        let cm = hv.domain(c).unwrap().lookup(si).unwrap();
        assert_ne!(pm, cm, "start_info must be duplicated");
        // The child's start_info embeds the child's domain id (rewrite).
        let mut buf = [0u8; 4];
        hv.read_page(c, si, 0, &mut buf).unwrap();
        assert_eq!(u32::from_le_bytes(buf), c.0);
    }

    #[test]
    fn second_clone_is_cheaper_than_first() {
        let clock = Clock::new();
        let mut hv = Hypervisor::new(
            clock.clone(),
            Rc::new(CostModel::calibrated()),
            &MachineConfig {
                guest_pool_mib: 256,
                cores: 4,
                notification_ring_capacity: 16,
            },
        );
        hv.set_cloning_enabled(true);
        let p = cloneable_guest(&mut hv, 4);

        let (c1, first) = {
            let t0 = clock.now();
            let c = do_clone(&mut hv, p, 1)[0];
            (c, clock.now().since(t0))
        };
        hv.cloneop(DomId::DOM0, CloneOp::Completion { child: c1 })
            .unwrap();
        let (c2, second) = {
            let t0 = clock.now();
            let c = do_clone(&mut hv, p, 1)[0];
            (c, clock.now().since(t0))
        };
        let _ = c2;
        assert!(
            second < first,
            "resharing ({second}) should be cheaper than first sharing ({first})"
        );
    }

    #[test]
    fn nested_clone_family() {
        let mut hv = hv();
        let p = cloneable_guest(&mut hv, 4);
        let c = do_clone(&mut hv, p, 1)[0];
        hv.cloneop(DomId::DOM0, CloneOp::Completion { child: c })
            .unwrap();
        // The grandchild is created by cloning the child.
        let g = do_clone(&mut hv, c, 1)[0];
        assert!(hv.is_descendant(g, p));
        assert!(hv.is_descendant(g, c));
        assert!(hv.same_family(g, p));
        let unrelated = hv.create_domain("other", 4, 1).unwrap();
        assert!(!hv.same_family(g, unrelated));
    }

    #[test]
    fn destroy_clone_returns_private_memory_only() {
        let mut hv = hv();
        let p = cloneable_guest(&mut hv, 4);
        let before_clone = hv.free_pages();
        let c = do_clone(&mut hv, p, 1)[0];
        let after_clone = hv.free_pages();
        let clone_cost = before_clone - after_clone;
        // A clone of a 4 MiB guest must consume far fewer than 1027 frames.
        assert!(clone_cost < 100, "clone consumed {clone_cost} frames");
        hv.destroy_domain(c).unwrap();
        assert_eq!(hv.free_pages(), before_clone);
    }

    #[test]
    fn dom0_can_clone_explicit_target_but_guests_cannot() {
        let mut hv = hv();
        let p = cloneable_guest(&mut hv, 4);
        let other = cloneable_guest(&mut hv, 4);
        assert_eq!(
            hv.cloneop(
                other,
                CloneOp::Clone {
                    target: Some(p),
                    nr_clones: 1
                }
            ),
            Err(HvError::Denied)
        );
        let r = hv
            .cloneop(
                DomId::DOM0,
                CloneOp::Clone {
                    target: Some(p),
                    nr_clones: 1,
                },
            )
            .unwrap();
        assert!(matches!(r, CloneOpResult::Cloned(v) if v.len() == 1));
    }

    #[test]
    fn checkpoint_and_reset_restore_memory_and_vcpus() {
        let mut hv = hv();
        let p = cloneable_guest(&mut hv, 4);
        hv.write_page(p, Pfn(3), 0, b"base").unwrap();
        let c = do_clone(&mut hv, p, 1)[0];
        hv.cloneop(DomId::DOM0, CloneOp::Completion { child: c })
            .unwrap();

        hv.cloneop(DomId::DOM0, CloneOp::Checkpoint { dom: c }).unwrap();
        // Dirty a shared page and a vCPU register.
        hv.write_page(c, Pfn(3), 0, b"drty").unwrap();
        hv.domain_mut(c).unwrap().vcpus[0].regs.rip = 0x1234;

        let r = hv
            .cloneop(DomId::DOM0, CloneOp::CloneReset { dom: c })
            .unwrap();
        assert!(matches!(r, CloneOpResult::Reset { dirty_pages } if dirty_pages >= 1));

        let mut buf = [0u8; 4];
        hv.read_page(c, Pfn(3), 0, &mut buf).unwrap();
        assert_eq!(&buf, b"base");
        assert_eq!(hv.domain(c).unwrap().vcpus[0].regs.rip, 0);

        // Reset is repeatable.
        hv.write_page(c, Pfn(3), 0, b"drt2").unwrap();
        hv.cloneop(DomId::DOM0, CloneOp::CloneReset { dom: c })
            .unwrap();
        hv.read_page(c, Pfn(3), 0, &mut buf).unwrap();
        assert_eq!(&buf, b"base");
    }

    #[test]
    fn clone_cow_privatizes_pages_for_breakpoints() {
        let mut hv = hv();
        let p = cloneable_guest(&mut hv, 4);
        let c = do_clone(&mut hv, p, 1)[0];
        let shared = hv.domain(c).unwrap().lookup(Pfn(1)).unwrap();
        hv.cloneop(
            DomId::DOM0,
            CloneOp::CloneCow {
                dom: c,
                pfns: vec![Pfn(1)],
            },
        )
        .unwrap();
        let private = hv.domain(c).unwrap().lookup(Pfn(1)).unwrap();
        assert_ne!(shared, private);
        assert_eq!(
            hv.frames().inspect(private).unwrap().owner(),
            FrameOwner::Dom(c)
        );
    }

    #[test]
    fn multi_clone_in_one_call() {
        let mut hv = hv();
        let p = cloneable_guest(&mut hv, 8);
        let kids = do_clone(&mut hv, p, 3);
        assert_eq!(kids.len(), 3);
        assert_eq!(hv.domain(p).unwrap().pending_stage2, 3);
        for k in &kids {
            hv.cloneop(DomId::DOM0, CloneOp::Completion { child: *k })
                .unwrap();
        }
        assert_eq!(hv.domain(p).unwrap().state, DomainState::Running);
    }

    #[test]
    fn notification_ring_backpressure() {
        let mut hv = Hypervisor::new(
            Clock::new(),
            Rc::new(CostModel::free()),
            &MachineConfig {
                guest_pool_mib: 256,
                cores: 1,
                notification_ring_capacity: 2,
            },
        );
        hv.set_cloning_enabled(true);
        let p = cloneable_guest(&mut hv, 8);
        do_clone(&mut hv, p, 2);
        let r = hv.cloneop(
            p,
            CloneOp::Clone {
                target: None,
                nr_clones: 1,
            },
        );
        assert_eq!(r, Err(HvError::NotificationRingFull));
        // Draining the ring unblocks cloning.
        hv.clone_ring_pop().unwrap();
        do_clone(&mut hv, p, 1);
    }
}
